package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sparker/internal/index"
	"sparker/internal/metablocking"
)

// equivCfg is the configuration under which sharded resolution is
// exactly equivalent to single-node resolution: no top-k pruning (a
// shard's local top-k is not the global top-k), no purge/filter
// thresholds that depend on shard-local collection sizes, and the CBS
// scheme (shared-key counts are shard-independent; ECBS folds in
// collection-wide block statistics).
func equivCfg() index.Config {
	cfg := index.DefaultConfig()
	cfg.Prune = index.PruneNone
	cfg.FilterRatio = 1
	cfg.MaxBlockFraction = 1
	cfg.Scheme = metablocking.CBS
	cfg.MatchThreshold = 0.1
	return cfg
}

// clusterProfiles is the shared corpus: distinct token overlaps with
// the query give every candidate a distinct weight and score, so the
// ranking needs no tie-breaking and single-node order (which breaks
// ties on shard-local IDs) is comparable with merged order.
var clusterProfiles = []string{
	`{"id": "p1", "name": "alpha beta gamma delta zulu"}`,
	`{"id": "p2", "name": "alpha beta gamma yankee xray"}`,
	`{"id": "p3", "name": "alpha beta victor whiskey"}`,
	`{"id": "p4", "name": "alpha uniform tango"}`,
	`{"id": "p5", "name": "sierra romeo quebec"}`,
}

const clusterQuery = `{"id": "q", "name": "alpha beta gamma delta"}`

// startShards boots n single-node shard servers under the equivalence
// config and a coordinator over them, returning the coordinator's test
// server, the shard servers, and the cleanups.
func startShards(t *testing.T, n int, copts ClusterOptions) (*httptest.Server, []*httptest.Server, *Cluster) {
	t.Helper()
	var urls []string
	var shardSrvs []*httptest.Server
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(NewHandler(index.New(false, equivCfg())))
		t.Cleanup(srv.Close)
		shardSrvs = append(shardSrvs, srv)
		urls = append(urls, srv.URL)
	}
	cluster, err := NewCluster(urls, copts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	coord := httptest.NewServer(cluster)
	t.Cleanup(coord.Close)
	return coord, shardSrvs, cluster
}

func postBody(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// clusterQueryWire is the coordinator response shape the tests decode.
type clusterQueryWire struct {
	Candidates []index.PartialCandidate `json:"candidates"`
	Matches    []index.PartialMatch     `json:"matches"`
	Truncated  bool                     `json:"truncated"`
	Cluster    struct {
		Shards    int      `json:"shards"`
		Responded int      `json:"responded"`
		Failed    []string `json:"failed"`
		Degraded  bool     `json:"degraded"`
	} `json:"cluster"`
}

// singleNodeAnswer resolves the query against one index holding the
// whole corpus and returns its matches and candidates in the global
// (original_id, source) identity the cluster wire uses.
func singleNodeAnswer(t *testing.T) ([]index.PartialMatch, []index.PartialCandidate) {
	t.Helper()
	srv := httptest.NewServer(NewHandler(index.New(false, equivCfg())))
	defer srv.Close()
	for _, p := range clusterProfiles {
		if code, body := postBody(t, srv.URL+"/v1/upsert", p); code != http.StatusOK {
			t.Fatalf("single-node upsert: %d %s", code, body)
		}
	}
	code, body := postBody(t, srv.URL+"/v1/query", clusterQuery)
	if code != http.StatusOK {
		t.Fatalf("single-node query: %d %s", code, body)
	}
	var resp struct {
		Candidates []index.PartialCandidate `json:"candidates"`
		Matches    []index.PartialMatch     `json:"matches"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Matches, resp.Candidates
}

// TestClusterMatchesSingleNode pins the tentpole equivalence: under
// the equivalence config, a 1-shard and a 3-shard cluster return
// byte-identical ranked matches (and candidates) to a single node
// holding the whole corpus.
func TestClusterMatchesSingleNode(t *testing.T) {
	wantMatches, wantCands := singleNodeAnswer(t)
	if len(wantMatches) == 0 || len(wantCands) == 0 {
		t.Fatalf("corpus yields no results to compare (matches %d, candidates %d)", len(wantMatches), len(wantCands))
	}

	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("%d-shard", shards), func(t *testing.T) {
			coord, _, _ := startShards(t, shards, ClusterOptions{})
			for _, p := range clusterProfiles {
				if code, body := postBody(t, coord.URL+"/v1/upsert", p); code != http.StatusOK {
					t.Fatalf("cluster upsert: %d %s", code, body)
				}
			}
			code, body := postBody(t, coord.URL+"/v1/query", clusterQuery)
			if code != http.StatusOK {
				t.Fatalf("cluster query: %d %s", code, body)
			}
			var got clusterQueryWire
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			if got.Cluster.Shards != shards || got.Cluster.Responded != shards || got.Cluster.Degraded {
				t.Fatalf("healthy cluster section = %+v", got.Cluster)
			}
			assertSameJSON(t, "matches", got.Matches, wantMatches)
			assertSameJSON(t, "candidates", got.Candidates, wantCands)
		})
	}
}

// assertSameJSON compares two values by their canonical JSON bytes —
// the "byte-identical on the wire" form of equality.
func assertSameJSON(t *testing.T, what string, got, want any) {
	t.Helper()
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, w) {
		t.Errorf("%s differ:\n got %s\nwant %s", what, g, w)
	}
}

// TestClusterDegradesOnShardDeath pins the failure policy: killing one
// shard of three turns its results missing and the response degraded —
// but still a 200 with the surviving shards' merged answer, never a
// 5xx. Killing every shard is the one case that answers 503.
func TestClusterDegradesOnShardDeath(t *testing.T) {
	wantMatches, _ := singleNodeAnswer(t)

	coord, shardSrvs, _ := startShards(t, 3, ClusterOptions{ShardRetries: -1})
	for _, p := range clusterProfiles {
		if code, body := postBody(t, coord.URL+"/v1/upsert", p); code != http.StatusOK {
			t.Fatalf("cluster upsert: %d %s", code, body)
		}
	}

	const dead = 1
	shardSrvs[dead].Close()

	code, body := postBody(t, coord.URL+"/v1/query", clusterQuery)
	if code != http.StatusOK {
		t.Fatalf("degraded query status = %d (want 200, never 5xx): %s", code, body)
	}
	var got clusterQueryWire
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Cluster.Degraded || got.Cluster.Responded != 2 || len(got.Cluster.Failed) != 1 {
		t.Fatalf("cluster section = %+v, want degraded with 2/3 responded", got.Cluster)
	}
	if got.Cluster.Failed[0] != shardSrvs[dead].URL {
		t.Errorf("failed = %v, want [%s]", got.Cluster.Failed, shardSrvs[dead].URL)
	}

	// The surviving answer is exactly the single-node answer minus the
	// profiles homed on the dead shard.
	var surviving []index.PartialMatch
	for _, m := range wantMatches {
		if ShardFor(m.OriginalID, 3) != dead {
			surviving = append(surviving, m)
		}
	}
	if len(surviving) == len(wantMatches) {
		t.Logf("note: no profile homed on shard %d; degraded subset equals full set", dead)
	}
	assertSameJSON(t, "surviving matches", got.Matches, surviving)

	// All shards dead: nothing left to merge — the one 5xx case.
	for i, srv := range shardSrvs {
		if i != dead {
			srv.Close()
		}
	}
	code, body = postBody(t, coord.URL+"/v1/query", clusterQuery)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("all-dead query status = %d, want 503: %s", code, body)
	}
	var env APIError
	if err := json.Unmarshal(body, &env); err != nil || env.Err.Code != ErrCodeUnavailable {
		t.Fatalf("all-dead body = %s (err %v), want %q envelope", body, err, ErrCodeUnavailable)
	}
}

// TestClusterUpsertRouting pins the hash routing: every write lands on
// ShardFor's shard, and bulk scatters records to their homes.
func TestClusterUpsertRouting(t *testing.T) {
	coord, shardSrvs, _ := startShards(t, 3, ClusterOptions{})

	shardProfiles := func() []int {
		counts := make([]int, len(shardSrvs))
		for i, srv := range shardSrvs {
			resp, err := http.Get(srv.URL + "/v1/stats")
			if err != nil {
				t.Fatal(err)
			}
			var st struct {
				Profiles int `json:"profiles"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			counts[i] = st.Profiles
		}
		return counts
	}

	code, body := postBody(t, coord.URL+"/v1/upsert", `{"id": "route-me", "name": "alpha beta"}`)
	if code != http.StatusOK {
		t.Fatalf("upsert: %d %s", code, body)
	}
	var ack struct {
		Created bool `json:"created"`
		Shard   int  `json:"shard"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	want := ShardFor("route-me", 3)
	if !ack.Created || ack.Shard != want {
		t.Fatalf("ack = %+v, want created on shard %d", ack, want)
	}
	counts := shardProfiles()
	for i, n := range counts {
		expect := 0
		if i == want {
			expect = 1
		}
		if n != expect {
			t.Errorf("shard %d holds %d profiles, want %d", i, n, expect)
		}
	}

	// Bulk scatters by the same hash.
	var bulk strings.Builder
	wantCounts := make([]int, 3)
	wantCounts[want]++ // route-me, already resident
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("bulk-%d", i)
		fmt.Fprintf(&bulk, "{\"id\": %q, \"name\": \"tok%d alpha\"}\n", id, i)
		wantCounts[ShardFor(id, 3)]++
	}
	code, body = postBody(t, coord.URL+"/v1/bulk", bulk.String())
	if code != http.StatusOK {
		t.Fatalf("bulk: %d %s", code, body)
	}
	var bulkAck struct {
		Upserted int `json:"upserted"`
	}
	if err := json.Unmarshal(body, &bulkAck); err != nil {
		t.Fatal(err)
	}
	if bulkAck.Upserted != 12 {
		t.Errorf("bulk upserted = %d, want 12", bulkAck.Upserted)
	}
	counts = shardProfiles()
	for i, n := range counts {
		if n != wantCounts[i] {
			t.Errorf("after bulk, shard %d holds %d profiles, want %d", i, n, wantCounts[i])
		}
	}

	// A record without an explicit id cannot be routed consistently.
	code, body = postBody(t, coord.URL+"/v1/upsert", `{"name": "anonymous"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("id-less upsert = %d %s, want 400", code, body)
	}
	var env APIError
	if err := json.Unmarshal(body, &env); err != nil || env.Err.Code != ErrCodeBadRequest {
		t.Fatalf("id-less upsert body = %s, want %q envelope", body, ErrCodeBadRequest)
	}
}

// TestClusterForwardsKnobsVerbatim pins the knob forwarding contract:
// what the coordinator sends a shard is the canonical encoding of the
// client's decoded knobs — with exactly two deliberate changes (the
// per-shard budget split and debug forced on for stage telemetry).
func TestClusterForwardsKnobsVerbatim(t *testing.T) {
	captured := make(chan string, 4)
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/query") {
			captured <- r.URL.RawQuery
			fmt.Fprint(w, `{}`)
			return
		}
		fmt.Fprint(w, `{"status": "ok"}`)
	}))
	defer fake.Close()
	cluster, err := NewCluster([]string{fake.URL}, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	coord := httptest.NewServer(cluster)
	defer coord.Close()

	code, body := postBody(t,
		coord.URL+"/v1/query?probe_floor=2&max_comparisons=64&source=1&budget_ms=100&probe=fallback",
		clusterQuery)
	if code != http.StatusOK {
		t.Fatalf("query via fake shard: %d %s", code, body)
	}
	got := <-captured
	want := QueryParams{
		Probe:             "fallback",
		ProbeFloor:        2,
		BudgetMS:          100 * shardBudgetFraction,
		BudgetSet:         true,
		MaxComparisons:    64,
		MaxComparisonsSet: true,
		Debug:             true,
		Source:            1,
		SourceSet:         true,
	}.Encode()
	if got != want {
		t.Errorf("forwarded knobs:\n got %q\nwant %q", got, want)
	}

	// An explicit ?budget_ms=0 (unlimited) forwards as 0, not as a
	// scaled default.
	code, _ = postBody(t, coord.URL+"/v1/query?budget_ms=0", clusterQuery)
	if code != http.StatusOK {
		t.Fatalf("budget_ms=0 query: %d", code)
	}
	got = <-captured
	want = QueryParams{BudgetSet: true, Debug: true}.Encode()
	if got != want {
		t.Errorf("budget_ms=0 forwarded as %q, want %q", got, want)
	}
}

// TestClusterReadyz pins the coordinator's readiness semantics: ready
// while any shard is, degraded reported, draining only when none are.
func TestClusterReadyz(t *testing.T) {
	coord, shardSrvs, cluster := startShards(t, 2, ClusterOptions{
		ProbeInterval: 20 * time.Millisecond,
		ShardRetries:  -1,
	})

	resp, err := http.Get(coord.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /readyz = %d, want 200", resp.StatusCode)
	}

	shardSrvs[0].Close()
	waitFor(t, func() bool { return cluster.healthyCount() == 1 })
	var ready struct {
		Status   string `json:"status"`
		Healthy  int    `json:"healthy"`
		Degraded bool   `json:"degraded"`
	}
	resp, err = http.Get(coord.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || !ready.Degraded || ready.Healthy != 1 {
		t.Fatalf("one-dead /readyz = %d %+v (err %v), want 200 degraded 1/2", resp.StatusCode, ready, err)
	}

	shardSrvs[1].Close()
	waitFor(t, func() bool { return cluster.healthyCount() == 0 })
	resp, err = http.Get(coord.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-dead /readyz = %d, want 503", resp.StatusCode)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestClusterMetrics pins the sparker_cluster_* families on /metrics.
func TestClusterMetrics(t *testing.T) {
	coord, _, _ := startShards(t, 2, ClusterOptions{})
	for _, p := range clusterProfiles {
		if code, _ := postBody(t, coord.URL+"/v1/upsert", p); code != http.StatusOK {
			t.Fatalf("upsert failed: %d", code)
		}
	}
	if code, body := postBody(t, coord.URL+"/v1/query", clusterQuery); code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	resp, err := http.Get(coord.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, want := range []string{
		"sparker_cluster_shards 2",
		"sparker_cluster_shards_healthy 2",
		"sparker_cluster_fanouts_total 1",
		"sparker_cluster_degraded_fanouts_total 0",
		"sparker_cluster_shard_healthy{shard=",
		"sparker_cluster_shard_requests_total{shard=",
		`sparker_cluster_stage_seconds_bucket{stage="tokenize"`,
		"sparker_cluster_merge_seconds_count 1",
		`sparker_http_requests_total{route="/v1/query"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in coordinator /metrics", want)
		}
	}
}
