package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sparker/internal/index"
)

// BenchmarkClusterQuery measures a full coordinator round trip — parse,
// fan-out over real HTTP shards, scatter-gather, deterministic merge,
// JSON response — against the same query on shard counts 1 and 3. The
// 1-shard case isolates the coordinator's fixed overhead (one hop, no
// real merge work); 3 shards adds concurrent fan-out and a three-way
// merge.
func BenchmarkClusterQuery(b *testing.B) {
	for _, shards := range []int{1, 3} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			var urls []string
			for i := 0; i < shards; i++ {
				srv := httptest.NewServer(NewHandler(index.New(false, equivCfg())))
				defer srv.Close()
				urls = append(urls, srv.URL)
			}
			cluster, err := NewCluster(urls, ClusterOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			coord := httptest.NewServer(cluster)
			defer coord.Close()

			// Seed a corpus big enough that the shards do real posting
			// work; rotating token suffixes give overlapping blocks
			// without making every profile a candidate.
			var bulk strings.Builder
			for i := 0; i < 256; i++ {
				fmt.Fprintf(&bulk, "{\"id\": \"bench-%d\", \"name\": \"alpha beta tok%d tok%d\"}\n",
					i, i%29, i%7)
			}
			resp, err := http.Post(coord.URL+"/v1/bulk", "application/json",
				strings.NewReader(bulk.String()))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("bulk seed: %d", resp.StatusCode)
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Post(coord.URL+"/v1/query", "application/json",
					strings.NewReader(clusterQuery))
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("query: %d", resp.StatusCode)
				}
			}
		})
	}
}
