package serve

// Admission control and graceful degradation: the front door of the
// serving tier. A bounded semaphore caps in-flight work on the
// expensive routes (/query, /upsert, /bulk); an over-limit request
// waits at most Options.ShedWait for a slot (bounded by its own
// context) and is otherwise shed with 429 (gate full, no wait
// configured) or 503 (wait expired) plus Retry-After — the server
// answers fast instead of queueing without bound. Admitted queries
// carry a degradation level derived from gate occupancy; the ladder
// (degrade* below) tightens their budget and probe policy so a loaded
// server keeps answering with cheaper, truncated best-first results.

import (
	"context"
	"net/http"
	"time"

	"sparker/internal/index"
	"sparker/internal/obs"
)

// admission is the concurrency gate: a buffered-channel semaphore plus
// the shed accounting. Nil disables admission entirely (the pre-gate
// behaviour).
type admission struct {
	sem      chan struct{}
	shedWait time.Duration

	waiting     obs.Gauge
	shedFull    obs.Counter
	shedTimeout obs.Counter
}

func newAdmission(maxInFlight int, shedWait time.Duration) *admission {
	if maxInFlight <= 0 {
		return nil
	}
	return &admission{sem: make(chan struct{}, maxInFlight), shedWait: shedWait}
}

// inFlight returns the currently admitted request count (0 on a nil gate).
func (a *admission) inFlight() int {
	if a == nil {
		return 0
	}
	return len(a.sem)
}

// capacity returns the configured in-flight bound (0 on a nil gate).
func (a *admission) capacity() int {
	if a == nil {
		return 0
	}
	return cap(a.sem)
}

// saturated reports a gate with no free slot — the "shedding hard"
// signal /readyz drains replicas on. A nil gate is never saturated.
func (a *admission) saturated() bool {
	return a != nil && len(a.sem) == cap(a.sem)
}

// acquire claims a slot, waiting at most shedWait while ctx lives. It
// returns the release func and the degradation level on admission, or
// a non-zero HTTP status (429 or 503) when the request is shed.
func (a *admission) acquire(ctx context.Context) (release func(), level, status int) {
	if a == nil {
		return func() {}, 0, 0
	}
	release = func() { <-a.sem }
	// The level reads occupancy *before* self: the load this request
	// found on arrival, not the load it created.
	found := len(a.sem)
	select {
	case a.sem <- struct{}{}:
		return release, levelFor(found, cap(a.sem), false), 0
	default:
	}
	if a.shedWait <= 0 {
		a.shedFull.Inc()
		return nil, 0, http.StatusTooManyRequests
	}
	a.waiting.Add(1)
	defer a.waiting.Add(-1)
	t := time.NewTimer(a.shedWait)
	defer t.Stop()
	select {
	case a.sem <- struct{}{}:
		return release, levelFor(cap(a.sem), cap(a.sem), true), 0
	case <-t.C:
		a.shedTimeout.Inc()
		return nil, 0, http.StatusServiceUnavailable
	case <-ctx.Done():
		// The client gave up first; the status is moot but the slot
		// must not leak, so shed like a timeout.
		a.shedTimeout.Inc()
		return nil, 0, http.StatusServiceUnavailable
	}
}

// gated wraps a handler behind the gate: over-limit requests shed with
// 429/503 + Retry-After instead of queueing, and the admission level
// rides in the request context for the degradation ladder. Shared by
// the single-node Handler and the cluster Coordinator.
func (a *admission) gated(retryAfterSecs int64, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, level, status := a.acquire(r.Context())
		if status != 0 {
			shedResponse(w, status, retryAfterSecs)
			return
		}
		defer release()
		fn(w, r.WithContext(context.WithValue(r.Context(), admissionLevelKey{}, level)))
	}
}

// levelFor maps gate occupancy onto the degradation ladder: 0 below
// half-full (healthy), 1 at half, 2 at three-quarters, 3 when the
// request had to wait for a slot (the gate was full on arrival).
func levelFor(occupied, capacity int, waited bool) int {
	switch {
	case waited:
		return 3
	case 4*occupied >= 3*capacity:
		return 2
	case 2*occupied >= capacity:
		return 1
	}
	return 0
}

// The degradation ladder's budget schedule. A request that carries no
// budget at all gets one imposed under pressure — degradation must
// bound work even for clients that never asked for a bound.
const (
	// degradedBudgetCap is the widest wall-clock budget a degraded
	// query may spend; each level above 1 halves it.
	degradedBudgetCap = 200 * time.Millisecond
	// degradedBudgetFloor is the narrowest budget degradation imposes —
	// tight, but never so tight that every answer is empty.
	degradedBudgetFloor = 5 * time.Millisecond
)

// degradedMaxComparisons caps scored candidates per level (level 1..3);
// level 0 leaves the request's own cap untouched.
var degradedMaxComparisons = [4]int{0, 1024, 256, 64}

// degrade tightens a request's resolve options per the admission
// level, in ladder order: level 1 tightens the wall-clock budget and
// caps comparisons, level 2 also drops a union probe to fallback,
// level 3 drops the probe entirely. The (possibly imposed) wall-clock
// budget is returned so the caller can stamp the deadline once.
func degrade(opts *index.ResolveOptions, level int, budget time.Duration) time.Duration {
	if level <= 0 {
		return budget
	}
	if budget == 0 || budget > degradedBudgetCap {
		budget = degradedBudgetCap
	}
	budget >>= uint(level - 1)
	if budget < degradedBudgetFloor {
		budget = degradedBudgetFloor
	}
	if lim := degradedMaxComparisons[level]; opts.Budget.MaxComparisons == 0 || opts.Budget.MaxComparisons > lim {
		opts.Budget.MaxComparisons = lim
	}
	switch {
	case level >= 3:
		opts.Probe.Policy = index.ProbeOff
	case level >= 2 && opts.Probe.Policy == index.ProbeUnion:
		opts.Probe.Policy = index.ProbeFallback
	}
	return budget
}

// shed writes the 429/503 shed response: Retry-After (derived from the
// configured shed wait — see retryAfterSeconds) so well-behaved clients
// back off for at least as long as the server would have let them wait
// for a slot, and the typed error envelope like every other error
// surface, with retry_after_seconds mirroring the header.
func shedResponse(w http.ResponseWriter, status int, retryAfterSecs int64) {
	httpErrorRetry(w, status, ErrCodeOverloaded, retryAfterSecs, errOverloaded)
}
