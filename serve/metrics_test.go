package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sparker/internal/index"
	"sparker/internal/obs/obstest"
	"sparker/internal/profile"
)

func obsTestIndex(t *testing.T) *index.Index {
	t.Helper()
	mk := func(src int, id, text string) profile.Profile {
		p := profile.Profile{OriginalID: id, SourceID: src}
		p.Add("name", text)
		return p
	}
	x := index.New(true, index.DefaultConfig())
	for _, p := range []profile.Profile{
		mk(0, "a1", "acme turbo blender kitchen"),
		mk(0, "a2", "zenix portable speaker"),
		mk(1, "b1", "acme turbo blender refurbished"),
		mk(1, "b2", "zenix speaker portable bluetooth"),
	} {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	return x
}

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, string(raw)
}

// TestMetricsEndpoint scrapes /metrics after driving traffic through
// the handler and validates the exposition line syntax plus the
// presence of every metric family the catalogue promises.
func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(obsTestIndex(t)))
	defer srv.Close()

	// One query through the legacy alias and one through the canonical
	// /v1 path: both must count into the same route="/v1/query" row.
	if resp, body := postJSON(t, srv.URL+"/query", `{"id": "probe", "name": "acme turbo blender"}`); resp.StatusCode != 200 {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, srv.URL+"/v1/query", `{"id": "probe2", "name": "acme turbo blender"}`); resp.StatusCode != 200 {
		t.Fatalf("v1 query: %d %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, srv.URL+"/upsert?source=1", `{"id": "b9", "name": "starlight projector"}`); resp.StatusCode != 200 {
		t.Fatalf("upsert: %d", resp.StatusCode)
	}
	// One client error, for the 4xx counter.
	if resp, _ := postJSON(t, srv.URL+"/query", `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query accepted: %d", resp.StatusCode)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	obstest.ValidateExposition(t, body)

	for _, want := range []string{
		"sparker_index_profiles 5",
		"sparker_index_queries_total 2",
		"sparker_index_upserts_total 5",
		`sparker_query_stage_seconds_bucket{stage="tokenize",le="+Inf"} 2`,
		`sparker_query_stage_seconds_bucket{stage="prune",le="+Inf"} 2`,
		`sparker_query_stage_seconds_bucket{stage="score",le="+Inf"} 2`,
		"sparker_query_seconds_count 2",
		"sparker_resolve_seconds_count 2",
		"sparker_upsert_seconds_count 5",
		"sparker_resolve_comparisons_count 2",
		`sparker_http_requests_total{route="/v1/query"} 3`,
		`sparker_http_requests_total{route="/v1/upsert"} 1`,
		`sparker_http_errors_total{route="/v1/query",class="4xx"} 1`,
		`sparker_http_errors_total{route="/v1/query",class="5xx"} 0`,
		`sparker_http_request_seconds_count{route="/v1/query"} 3`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("missing %q in /metrics output", want)
		}
	}
}

// TestMetricsDisabledOption pins Options.NoMetrics: the endpoint is
// absent, everything else still serves.
func TestMetricsDisabledOption(t *testing.T) {
	srv := httptest.NewServer(NewHandlerOptions(obsTestIndex(t), Options{NoMetrics: true}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics with NoMetrics: %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/stats: %d", resp.StatusCode)
	}
}

// TestDebugQueryMode checks ?debug=1: a per-stage breakdown rides on
// the response, absent without the flag.
func TestDebugQueryMode(t *testing.T) {
	srv := httptest.NewServer(NewHandler(obsTestIndex(t)))
	defer srv.Close()

	resp, body := postJSON(t, srv.URL+"/query?debug=1", `{"id": "probe", "name": "acme turbo blender"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Candidates []any `json:"candidates"`
		Debug      *struct {
			Stages []struct {
				Stage string `json:"stage"`
				Nanos int64  `json:"nanos"`
			} `json:"stages"`
			TotalNanos int64 `json:"total_nanos"`
		} `json:"debug"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Debug == nil {
		t.Fatal("no debug breakdown with ?debug=1")
	}
	if len(out.Debug.Stages) != index.NumStages {
		t.Fatalf("debug stages = %d, want %d", len(out.Debug.Stages), index.NumStages)
	}
	var sum int64
	seen := map[string]bool{}
	for _, s := range out.Debug.Stages {
		if s.Nanos < 0 {
			t.Errorf("stage %s nanos = %d, want >= 0", s.Stage, s.Nanos)
		}
		seen[s.Stage] = true
		sum += s.Nanos
	}
	for _, want := range []string{"tokenize", "purge_filter", "candidates", "lsh_probe", "weigh", "prune", "score"} {
		if !seen[want] {
			t.Errorf("debug breakdown missing stage %q", want)
		}
	}
	if sum != out.Debug.TotalNanos {
		t.Errorf("stage sum %d != total %d", sum, out.Debug.TotalNanos)
	}
	if out.Debug.TotalNanos <= 0 {
		t.Errorf("total nanos = %d, want positive", out.Debug.TotalNanos)
	}

	_, plain := postJSON(t, srv.URL+"/query", `{"id": "probe", "name": "acme turbo blender"}`)
	if strings.Contains(plain, `"debug"`) {
		t.Error("debug breakdown present without ?debug=1")
	}
}

// TestStatsHTTPCounters checks the /stats surface gained the per-route
// error counters while keeping the index snapshot fields inline.
func TestStatsHTTPCounters(t *testing.T) {
	srv := httptest.NewServer(NewHandler(obsTestIndex(t)))
	defer srv.Close()

	postJSON(t, srv.URL+"/query", `{"id": "probe", "name": "acme turbo blender"}`)
	postJSON(t, srv.URL+"/query", `garbage`) // 400
	http.Get(srv.URL + "/query")             // 405 (GET on a POST route)

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Profiles int   `json:"profiles"`
		Queries  int64 `json:"queries"`
		Timings  []struct {
			Stage string `json:"stage"`
			Count uint64 `json:"count"`
		} `json:"timings"`
		HTTP []struct {
			Route     string `json:"route"`
			Requests  int64  `json:"requests"`
			Errors4xx int64  `json:"errors_4xx"`
			Errors5xx int64  `json:"errors_5xx"`
		} `json:"http"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Profiles != 4 || stats.Queries != 1 {
		t.Errorf("snapshot fields lost: profiles=%d queries=%d", stats.Profiles, stats.Queries)
	}
	if len(stats.Timings) == 0 {
		t.Error("no timing rows in /stats")
	}
	var query struct {
		requests, e4 int64
		found        bool
	}
	for _, r := range stats.HTTP {
		if r.Route == "/v1/query" {
			query.requests, query.e4, query.found = r.Requests, r.Errors4xx, true
		}
	}
	if !query.found {
		t.Fatal("no /v1/query row in stats http counters")
	}
	if query.requests != 3 || query.e4 != 2 {
		t.Errorf("/query counters requests=%d errors_4xx=%d, want 3/2", query.requests, query.e4)
	}
}

// TestSlowQueryLog drives a query through a handler with a 1ns slow
// threshold and checks the structured record carries the per-stage
// breakdown.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	srv := httptest.NewServer(NewHandlerOptions(obsTestIndex(t), Options{
		Logger:    logger,
		SlowQuery: time.Nanosecond,
	}))
	defer srv.Close()

	if resp, body := postJSON(t, srv.URL+"/query", `{"id": "probe", "name": "acme turbo blender"}`); resp.StatusCode != 200 {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("slow-query log is not one JSON record: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "slow query" {
		t.Errorf("msg = %v", rec["msg"])
	}
	for _, key := range []string{"original_id", "elapsed_ms", "tokenize_ms", "candidates_ms", "score_ms", "comparisons", "matches"} {
		if _, ok := rec[key]; !ok {
			t.Errorf("slow-query record missing %q: %v", key, rec)
		}
	}
	if rec["original_id"] != "probe" {
		t.Errorf("original_id = %v", rec["original_id"])
	}

	// Below the threshold: nothing logged.
	buf.Reset()
	srv2 := httptest.NewServer(NewHandlerOptions(obsTestIndex(t), Options{
		Logger:    logger,
		SlowQuery: time.Hour,
	}))
	defer srv2.Close()
	postJSON(t, srv2.URL+"/query", `{"id": "probe", "name": "acme turbo blender"}`)
	if buf.Len() != 0 {
		t.Errorf("fast query logged as slow: %s", buf.String())
	}
}
