package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"sparker"
	"sparker/serve"
)

// newTestServer builds a small clean-clean index through the public API
// and serves it.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	mk := func(id, key, value string) sparker.Profile {
		p := sparker.Profile{OriginalID: id}
		p.Add(key, value)
		return p
	}
	a := []sparker.Profile{
		mk("a1", "name", "acme turboblend blender"),
		mk("a2", "name", "zenix soundwave speaker"),
		mk("a3", "name", "quietcool desk fan"),
	}
	b := []sparker.Profile{
		mk("b1", "title", "turboblend blender by acme"),
		mk("b2", "title", "zenix soundwave portable speaker"),
		mk("b3", "title", "luxor desk lamp"),
	}
	idx, err := sparker.NewIndex(sparker.NewCleanClean(a, b), sparker.DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.NewHandler(idx))
	t.Cleanup(srv.Close)
	return srv
}

func TestHandlerEndToEnd(t *testing.T) {
	srv := newTestServer(t)

	post := func(path, body string) map[string]any {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Upsert a new source-1 profile, then query for it from source 0.
	up := post("/upsert?source=1", `{"id": "b9", "title": "starlight projector lamp"}`)
	if up["created"] != true {
		t.Fatalf("upsert response = %v", up)
	}
	q := post("/query", `{"id": "probe", "name": "starlight projector"}`)
	cands := q["candidates"].([]any)
	if len(cands) != 1 {
		t.Fatalf("candidates = %v", cands)
	}
	if cands[0].(map[string]any)["original_id"] != "b9" {
		t.Fatalf("top candidate = %v", cands[0])
	}

	bulk := post("/bulk?source=1", "{\"id\": \"b10\", \"title\": \"copper kettle\"}\n{\"id\": \"b11\", \"title\": \"steel kettle\"}")
	if bulk["upserted"] != float64(2) {
		t.Fatalf("bulk response = %v", bulk)
	}

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap sparker.IndexSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Profiles != 9 || snap.Upserts != 3 {
		t.Fatalf("stats = %+v", snap)
	}
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	srv := newTestServer(t)

	if resp, err := http.Get(srv.URL + "/query"); err != nil {
		t.Fatal(err)
	} else if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query status = %d", resp.StatusCode)
	}
	for _, tc := range []struct{ path, body string }{
		{"/upsert?source=9", `{"id": "z"}`},
		{"/query", `{"id": oops`},
		{"/query", "{\"id\": \"p1\"}\n{\"id\": \"p2\"}"},
		{"/query", ""},
	} {
		resp, err := http.Post(srv.URL+tc.path, "application/json", bytes.NewBufferString(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s with %q: status %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
}
