// Package serve exposes the online entity index over HTTP — the handler
// behind the sparker-serve command. It lives outside the root sparker
// package and outside internal/index so that batch-only consumers of the
// library do not link the HTTP stack.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"sparker/internal/index"
	"sparker/internal/loader"
	"sparker/internal/obs"
	"sparker/internal/profile"
)

// Options configures the optional persistence and observability
// surfaces of the handler.
type Options struct {
	// SnapshotPath enables POST /snapshot/save: each call writes a
	// durable snapshot of the index there (atomically). Empty disables
	// the endpoint.
	SnapshotPath string
	// Logger receives the slow-query log (structured, slog). Nil uses
	// slog.Default().
	Logger *slog.Logger
	// SlowQuery logs any /query resolution taking at least this long,
	// with its per-stage timing breakdown — the first question to ask of
	// a slow resolver is which stage ate the time. Zero disables the
	// slow-query log.
	SlowQuery time.Duration
	// NoMetrics disables GET /metrics (enabled by default).
	NoMetrics bool
}

// NewHandler serves an index over HTTP:
//
//	POST /query         — body: one JSON profile {"id": "...", "attr":
//	                      "value"}; ranks candidates and scores matches.
//	                      ?source=1 marks the query as coming from the
//	                      second clean source. ?probe=off|fallback|union
//	                      overrides the index's LSH probe policy for this
//	                      query and ?probe_floor=N the fallback floor
//	                      (both need an LSH-enabled index; see
//	                      IndexConfig.LSH and sparker-serve -lsh).
//	                      ?debug=1 adds a per-stage timing breakdown of
//	                      this query to the response.
//	POST /upsert        — body: one JSON profile; inserts or replaces it.
//	POST /bulk          — body: JSON-lines profiles; upserts every record.
//	POST /snapshot/save — write a durable snapshot (needs a configured
//	                      snapshot path; see NewHandlerOptions).
//	GET  /stats         — consistent index snapshot, including read-only
//	                      mode, durable-snapshot metadata, per-stage
//	                      timing digests and per-route HTTP counters.
//	GET  /metrics       — Prometheus text exposition of the same
//	                      telemetry (per-stage latency histograms,
//	                      request/error counters, LSH probe rates).
//
// Every route is instrumented: request, 4xx and 5xx counters plus a
// latency histogram per route, surfaced by both /stats and /metrics.
// Upserts against a read-only replica fail with 403. Profiles use the
// loader's JSON-lines wire format; the "id" field is the original
// identifier, every other field an attribute.
func NewHandler(x *index.Index) http.Handler { return NewHandlerOptions(x, Options{}) }

// NewHandlerOptions is NewHandler with the persistence and
// observability surfaces configured.
func NewHandlerOptions(x *index.Index, opts Options) http.Handler {
	h := &handler{x: x, opts: opts, logger: opts.Logger}
	if h.logger == nil {
		h.logger = slog.Default()
	}
	mux := http.NewServeMux()
	h.handle(mux, "/query", h.query)
	h.handle(mux, "/upsert", h.upsert)
	h.handle(mux, "/bulk", h.bulk)
	h.handle(mux, "/snapshot/save", h.snapshotSave)
	h.handle(mux, "/stats", h.stats)
	if !opts.NoMetrics {
		h.handle(mux, "/metrics", h.metrics)
	}
	return mux
}

// handler carries the index, options and per-route metrics behind the
// mux.
type handler struct {
	x      *index.Index
	opts   Options
	logger *slog.Logger
	routes []*routeMetrics
}

func (h *handler) query(w http.ResponseWriter, r *http.Request) {
	p, ok := readOneProfile(w, r, h.x)
	if !ok {
		return
	}
	opts, ok := readProbeOptions(w, r, h.x)
	if !ok {
		return
	}
	start := obs.Now()
	res := h.x.ResolveWith(p, opts)
	elapsed := obs.Now() - start
	if h.opts.SlowQuery > 0 && elapsed >= int64(h.opts.SlowQuery) {
		h.logSlowQuery(p, res, elapsed)
	}
	resp := newQueryResponse(h.x, res)
	if wantDebug(r) {
		resp.Debug = newDebugJSON(res)
	}
	writeJSON(w, resp)
}

func (h *handler) upsert(w http.ResponseWriter, r *http.Request) {
	p, ok := readOneProfile(w, r, h.x)
	if !ok {
		return
	}
	id, created, err := h.x.Upsert(*p)
	if err != nil {
		httpError(w, upsertErrorStatus(err), err)
		return
	}
	writeJSON(w, map[string]any{"id": id, "created": created})
}

func (h *handler) bulk(w http.ResponseWriter, r *http.Request) {
	ps, ok := readProfiles(w, r, h.x)
	if !ok {
		return
	}
	for _, p := range ps {
		if _, _, err := h.x.Upsert(p); err != nil {
			httpError(w, upsertErrorStatus(err), err)
			return
		}
	}
	writeJSON(w, map[string]any{"upserted": len(ps)})
}

func (h *handler) snapshotSave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	if h.opts.SnapshotPath == "" {
		httpError(w, http.StatusNotFound, fmt.Errorf("no snapshot path configured (start sparker-serve with -snapshot)"))
		return
	}
	// A replica consumes the snapshot file, never produces it — a
	// stale replica must not clobber the primary's newer snapshot.
	// Enforced here too, not only in sparker-serve's flag wiring, so
	// embedders of the handler get the same invariant.
	if h.x.ReadOnly() {
		httpError(w, http.StatusForbidden, fmt.Errorf("read-only replica does not write snapshots"))
		return
	}
	start := time.Now()
	st, err := h.x.Save(h.opts.SnapshotPath)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, map[string]any{
		"path":       st.Path,
		"bytes":      st.Bytes,
		"elapsed_ms": float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// statsResponse is the /stats body: the index snapshot (its fields
// inline, exactly the pre-observability shape) plus the per-route HTTP
// counters the serving layer owns.
type statsResponse struct {
	index.Snapshot
	HTTP []routeStatsJSON `json:"http"`
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, statsResponse{Snapshot: h.x.Snapshot(), HTTP: h.routeStats()})
}

// logSlowQuery emits one structured slow-query record with the
// per-stage breakdown — enough to see where the time went without
// re-running the query.
func (h *handler) logSlowQuery(p *profile.Profile, res *index.Resolution, elapsedNanos int64) {
	attrs := make([]any, 0, 2*index.NumStages+14)
	attrs = append(attrs,
		slog.String("original_id", p.OriginalID),
		slog.Float64("elapsed_ms", float64(elapsedNanos)/1e6),
	)
	for s := 0; s < index.NumStages; s++ {
		attrs = append(attrs, slog.Float64(index.Stage(s).String()+"_ms", float64(res.Query.StageNanos[s])/1e6))
	}
	attrs = append(attrs,
		slog.Int("keys", res.Query.Keys),
		slog.Int("postings_scanned", res.Query.PostingsScanned),
		slog.Int("candidates", len(res.Query.Candidates)),
		slog.Int("comparisons", res.Comparisons),
		slog.Int("matches", len(res.Matches)),
		slog.Bool("lsh_probed", res.Query.LSHProbed),
	)
	h.logger.Warn("slow query", attrs...)
}

// upsertErrorStatus maps index write errors onto HTTP statuses: writes
// against a read-only replica are refused, not malformed.
func upsertErrorStatus(err error) int {
	if errors.Is(err, index.ErrReadOnly) {
		return http.StatusForbidden
	}
	return http.StatusBadRequest
}

// wantDebug reports whether the request asked for the per-stage timing
// breakdown.
func wantDebug(r *http.Request) bool {
	switch r.URL.Query().Get("debug") {
	case "1", "true":
		return true
	}
	return false
}

// readProbeOptions parses the per-query LSH probe knobs. Explicitly
// requesting a probe on an index without LSH is a client error, not a
// silent no-op.
func readProbeOptions(w http.ResponseWriter, r *http.Request, x *index.Index) (index.ProbeOptions, bool) {
	opts := index.ProbeOptions{Policy: x.ProbePolicy()}
	if s := r.URL.Query().Get("probe"); s != "" {
		pol, err := index.ParseProbePolicy(s)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return opts, false
		}
		if pol != index.ProbeOff && !x.LSHEnabled() {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("probe=%s needs an LSH-enabled index (start sparker-serve with -lsh)", s))
			return opts, false
		}
		opts.Policy = pol
	}
	if s := r.URL.Query().Get("probe_floor"); s != "" {
		floor, err := strconv.Atoi(s)
		if err != nil || floor < 1 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad probe_floor %q", s))
			return opts, false
		}
		if !x.LSHEnabled() {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("probe_floor needs an LSH-enabled index (start sparker-serve with -lsh)"))
			return opts, false
		}
		opts.Floor = floor
	}
	return opts, true
}

// candidateJSON is one ranked blocking candidate on the wire.
type candidateJSON struct {
	ID            profile.ID `json:"id"`
	OriginalID    string     `json:"original_id"`
	Source        int        `json:"source"`
	Weight        float64    `json:"weight"`
	SharedKeys    int        `json:"shared_keys"`
	SharedBuckets int        `json:"shared_buckets,omitempty"`
}

// matchJSON is one scored match on the wire.
type matchJSON struct {
	ID         profile.ID `json:"id"`
	OriginalID string     `json:"original_id"`
	Source     int        `json:"source"`
	Score      float64    `json:"score"`
}

// stageNanosJSON is one row of the ?debug=1 breakdown.
type stageNanosJSON struct {
	Stage string `json:"stage"`
	Nanos int64  `json:"nanos"`
}

// debugJSON is the ?debug=1 payload: where this query's time went,
// stage by stage.
type debugJSON struct {
	Stages     []stageNanosJSON `json:"stages"`
	TotalNanos int64            `json:"total_nanos"`
}

func newDebugJSON(r *index.Resolution) *debugJSON {
	d := &debugJSON{Stages: make([]stageNanosJSON, 0, index.NumStages)}
	for s := 0; s < index.NumStages; s++ {
		n := r.Query.StageNanos[s]
		d.Stages = append(d.Stages, stageNanosJSON{Stage: index.Stage(s).String(), Nanos: n})
		d.TotalNanos += n
	}
	return d
}

// queryResponse carries a resolution plus its probe accounting.
type queryResponse struct {
	Candidates      []candidateJSON `json:"candidates"`
	Matches         []matchJSON     `json:"matches"`
	Keys            int             `json:"keys"`
	BlocksProbed    int             `json:"blocks_probed"`
	BlocksPurged    int             `json:"blocks_purged"`
	BlocksFiltered  int             `json:"blocks_filtered"`
	PostingsScanned int             `json:"postings_scanned"`
	Pruned          int             `json:"pruned"`
	Comparisons     int             `json:"comparisons"`
	// LSH probe accounting, present only when a probe ran.
	LSHProbed     bool `json:"lsh_probed,omitempty"`
	BucketsProbed int  `json:"buckets_probed,omitempty"`
	BucketsPurged int  `json:"buckets_purged,omitempty"`
	LSHCandidates int  `json:"lsh_candidates,omitempty"`
	// Debug is the per-stage timing breakdown, present only with
	// ?debug=1.
	Debug *debugJSON `json:"debug,omitempty"`
}

func newQueryResponse(x *index.Index, r *index.Resolution) queryResponse {
	resp := queryResponse{
		Candidates:      make([]candidateJSON, 0, len(r.Query.Candidates)),
		Matches:         make([]matchJSON, 0, len(r.Matches)),
		Keys:            r.Query.Keys,
		BlocksProbed:    r.Query.BlocksProbed,
		BlocksPurged:    r.Query.BlocksPurged,
		BlocksFiltered:  r.Query.BlocksFiltered,
		PostingsScanned: r.Query.PostingsScanned,
		Pruned:          r.Query.Pruned,
		Comparisons:     r.Comparisons,
		LSHProbed:       r.Query.LSHProbed,
		BucketsProbed:   r.Query.BucketsProbed,
		BucketsPurged:   r.Query.BucketsPurged,
		LSHCandidates:   r.Query.LSHCandidates,
	}
	for _, c := range r.Query.Candidates {
		cj := candidateJSON{ID: c.ID, Weight: c.Weight, SharedKeys: c.SharedKeys, SharedBuckets: c.SharedBuckets}
		if orig, src, ok := x.Meta(c.ID); ok {
			cj.OriginalID = orig
			cj.Source = src
		}
		resp.Candidates = append(resp.Candidates, cj)
	}
	for _, m := range r.Matches {
		mj := matchJSON{ID: m.B, Score: m.Score}
		if orig, src, ok := x.Meta(m.B); ok {
			mj.OriginalID = orig
			mj.Source = src
		}
		resp.Matches = append(resp.Matches, mj)
	}
	return resp
}

// readOneProfile parses exactly one JSON profile from a POST body.
func readOneProfile(w http.ResponseWriter, r *http.Request, x *index.Index) (*profile.Profile, bool) {
	ps, ok := readProfiles(w, r, x)
	if !ok {
		return nil, false
	}
	if len(ps) != 1 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("expected one profile, got %d", len(ps)))
		return nil, false
	}
	return &ps[0], true
}

// readProfiles parses a JSON-lines POST body, applying the ?source param.
func readProfiles(w http.ResponseWriter, r *http.Request, x *index.Index) ([]profile.Profile, bool) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return nil, false
	}
	ps, err := loader.ReadProfilesJSONL(r.Body, "id")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return nil, false
	}
	source := 0
	if s := r.URL.Query().Get("source"); s != "" {
		source, err = strconv.Atoi(s)
		if err != nil || source < 0 || source > 1 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad source %q", s))
			return nil, false
		}
		if source == 1 && !x.Clean() {
			httpError(w, http.StatusBadRequest, fmt.Errorf("source=1 needs a clean-clean index"))
			return nil, false
		}
	}
	for i := range ps {
		ps[i].SourceID = source
	}
	return ps, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
