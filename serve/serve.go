// Package serve exposes the online entity index over HTTP — the handler
// behind the sparker-serve command. It lives outside the root sparker
// package and outside internal/index so that batch-only consumers of the
// library do not link the HTTP stack.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"sparker/internal/index"
	"sparker/internal/loader"
	"sparker/internal/obs"
	"sparker/internal/profile"
)

// DefaultMaxBodyBytes caps /query, /upsert and /bulk request bodies
// when Options.MaxBodyBytes is zero: large enough for generous bulk
// loads, small enough that one request can never balloon the heap.
const DefaultMaxBodyBytes int64 = 32 << 20

// Options configures the optional persistence, observability and
// admission-control surfaces of the handler.
type Options struct {
	// SnapshotPath enables POST /snapshot/save: each call writes a
	// durable snapshot of the index there (atomically). Empty disables
	// the endpoint.
	SnapshotPath string
	// Logger receives the slow-query log (structured, slog). Nil uses
	// slog.Default().
	Logger *slog.Logger
	// SlowQuery logs any /query resolution taking at least this long,
	// with its per-stage timing breakdown — the first question to ask of
	// a slow resolver is which stage ate the time. Zero disables the
	// slow-query log.
	SlowQuery time.Duration
	// NoMetrics disables GET /metrics (enabled by default).
	NoMetrics bool

	// MaxInFlight caps concurrently served requests on the resolution
	// routes (/query, /upsert, /bulk). Beyond the cap, requests wait at
	// most ShedWait and are then shed with 429/503 + Retry-After
	// instead of queueing; admitted queries degrade by gate occupancy
	// (see admission.go). Zero disables admission control entirely.
	MaxInFlight int
	// ShedWait bounds how long an over-limit request waits for a slot
	// (also bounded by the request's own context). Zero sheds
	// immediately with 429; with a wait, expiry sheds with 503.
	ShedWait time.Duration
	// DefaultBudget is the wall-clock budget applied to /query requests
	// that do not carry ?budget_ms= themselves. Zero means unlimited
	// (until the degradation ladder imposes one under pressure).
	DefaultBudget time.Duration
	// MaxBodyBytes caps request bodies on /query, /upsert and /bulk
	// (413 beyond it). Zero uses DefaultMaxBodyBytes.
	MaxBodyBytes int64

	// Follower, when non-nil, is the replication loop feeding this
	// handler's index from a leader (see replication.go). The handler
	// reports its lag in /stats and /metrics, and /readyz holds the
	// replica out of rotation until the follower has bootstrapped.
	Follower *Follower
}

// NewHandler serves an index over HTTP. Every route lives under the
// versioned /v1/ prefix with the historical unversioned path kept as
// an alias (same handler, same counters):
//
//	POST /v1/query         — body: one JSON profile {"id": "...",
//	                      "attr": "value"}; ranks candidates and scores
//	                      matches. ?source=1 marks the query as coming
//	                      from the second clean source.
//	                      ?probe=off|fallback|union overrides the
//	                      index's LSH probe policy for this query and
//	                      ?probe_floor=N the fallback floor (both need
//	                      an LSH-enabled index; see IndexConfig.LSH and
//	                      sparker-serve -lsh). ?debug=1 adds a
//	                      per-stage timing breakdown of this query to
//	                      the response. ?budget_ms= and
//	                      ?max_comparisons= bound this query's work
//	                      (wall-clock / scored candidates); a tripped
//	                      budget returns the best-first prefix with
//	                      "truncated": true and the tripping stage.
//	                      The knob set is typed: see QueryParams.
//	POST /v1/upsert        — body: one JSON profile; inserts or
//	                      replaces it.
//	POST /v1/bulk          — body: JSON-lines profiles; upserts every
//	                      record.
//	POST /v1/snapshot/save — write a durable snapshot (needs a
//	                      configured snapshot path; see
//	                      NewHandlerOptions).
//	GET  /v1/stats         — consistent index snapshot, including
//	                      read-only mode, durable-snapshot metadata,
//	                      per-stage timing digests, per-route HTTP
//	                      counters and admission/budget accounting.
//	GET  /metrics       — Prometheus text exposition of the same
//	                      telemetry (per-stage latency histograms,
//	                      request/error counters, LSH probe rates,
//	                      shed/degraded/truncated counters).
//	GET  /healthz       — liveness: 200 while the process serves.
//	GET  /readyz        — readiness: 200 while the index holds data and
//	                      the admission gate is not saturated; 503 tells
//	                      a load balancer to drain this replica. A
//	                      read-only replica that has not yet loaded a
//	                      snapshot (or applied a delta) answers 503 so
//	                      traffic never routes to an empty follower.
//	GET  /v1/deltas        — replication feed: the op frames applied
//	                      after ?since=<seq>, long-polling up to
//	                      ?wait_ms= when caught up (see
//	                      replication.go). Needs an op-log-enabled
//	                      index.
//	GET  /v1/snapshot      — streams a full binary snapshot of the
//	                      index, the follower bootstrap (and resync)
//	                      source.
//
// /metrics, /healthz and /readyz stay unversioned: they are operator
// conventions (scrapers and load balancers), not API surfaces.
//
// Every 4xx/5xx response carries the typed JSON error envelope
// {"error": {"code", "message", "retry_after_seconds?"}} — see
// APIError and the ErrCode* constants.
//
// With Options.MaxInFlight set, /v1/query, /v1/upsert and /v1/bulk sit
// behind an admission gate: over-limit requests wait at most
// Options.ShedWait and are then shed with 429/503 + Retry-After, and
// admitted queries degrade under pressure (tightened budget, cheaper
// probe policy) — see admission.go for the ladder. Request bodies on
// those routes are bounded by Options.MaxBodyBytes (413 beyond it).
//
// Every route is instrumented: request, 4xx and 5xx counters plus a
// latency histogram per route (labelled by the canonical /v1 path,
// aliases included), surfaced by both /v1/stats and /metrics. Upserts
// against a read-only replica fail with 403. Profiles use the loader's
// JSON-lines wire format; the "id" field is the original identifier,
// every other field an attribute.
func NewHandler(x *index.Index) *Handler { return NewHandlerOptions(x, Options{}) }

// NewHandlerOptions is NewHandler with the persistence, observability,
// admission and replication surfaces configured.
func NewHandlerOptions(x *index.Index, opts Options) *Handler {
	h := &Handler{opts: opts, logger: opts.Logger, follower: opts.Follower}
	h.idx.Store(x)
	if h.logger == nil {
		h.logger = slog.Default()
	}
	h.gate = newAdmission(opts.MaxInFlight, opts.ShedWait)
	h.maxBody = opts.MaxBodyBytes
	if h.maxBody <= 0 {
		h.maxBody = DefaultMaxBodyBytes
	}
	h.retryAfter = retryAfterSeconds(opts.ShedWait)
	h.router.init()
	h.handle("/v1/query", h.gated(h.query), "/query")
	h.handle("/v1/upsert", h.gated(h.upsert), "/upsert")
	h.handle("/v1/bulk", h.gated(h.bulk), "/bulk")
	h.handle("/v1/snapshot/save", h.snapshotSave, "/snapshot/save")
	h.handle("/v1/snapshot", h.snapshotStream, "/snapshot")
	h.handle("/v1/deltas", h.deltas, "/deltas")
	h.handle("/v1/stats", h.stats, "/stats")
	h.handle("/healthz", h.healthz)
	h.handle("/readyz", h.readyz)
	if !opts.NoMetrics {
		h.handle("/metrics", h.metrics)
	}
	return h
}

// Handler serves an index over HTTP (see NewHandler for the routes). It
// holds the index behind an atomic pointer so a follower resync can
// swap in a freshly bootstrapped index without a lock on the request
// path: each request pins one index for its whole duration and the old
// one drains naturally.
type Handler struct {
	router
	idx      atomic.Pointer[index.Index]
	opts     Options
	logger   *slog.Logger
	gate     *admission
	maxBody  int64
	follower *Follower
	// retryAfter is the Retry-After value (whole seconds) of every shed
	// and not-ready response, derived from Options.ShedWait: a client
	// told to come back should wait at least as long as the server
	// itself would have let it wait for a slot.
	retryAfter int64

	// Budget/degradation accounting, exposed by /stats and /metrics.
	degraded    obs.Counter   // queries served at a non-zero ladder level
	truncated   obs.Counter   // responses whose budget tripped
	budgetSpent obs.Histogram // comparisons spent per budgeted query
}

// Index returns the handler's current index.
func (h *Handler) Index() *index.Index { return h.idx.Load() }

// SetIndex atomically swaps the served index — the follower resync
// path: in-flight requests finish on the index they started with.
func (h *Handler) SetIndex(x *index.Index) { h.idx.Store(x) }

// retryAfterSeconds renders a shed wait as a whole-second Retry-After
// value, rounding up so clients never come back before a slot could
// have opened; the floor of 1 keeps the header meaningful when no wait
// is configured.
func retryAfterSeconds(wait time.Duration) int64 {
	secs := int64(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// errOverloaded is the shed response body: what a client sees when the
// admission gate refuses its request.
var errOverloaded = errors.New("server overloaded, retry later")

// gated wraps a handler behind the admission gate: over-limit requests
// shed with 429/503 + Retry-After instead of queueing. The admission
// level rides in the request context for the query handler's
// degradation ladder.
func (h *Handler) gated(fn http.HandlerFunc) http.HandlerFunc {
	return h.gate.gated(h.retryAfter, fn)
}

// admissionLevelKey carries the degradation level from the gate to the
// query handler.
type admissionLevelKey struct{}

func admissionLevel(r *http.Request) int {
	level, _ := r.Context().Value(admissionLevelKey{}).(int)
	return level
}

func (h *Handler) query(w http.ResponseWriter, r *http.Request) {
	params, ok := h.readParams(w, r)
	if !ok {
		return
	}
	p, ok := h.readOneProfile(w, r, params)
	if !ok {
		return
	}
	x := h.Index()
	opts, budget, err := params.resolveOptions(x, h.opts.DefaultBudget)
	if err != nil {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	// The degradation ladder: under gate pressure, tighten the budget
	// (imposing one if the request carried none) and cheapen the probe
	// policy — cheaper truncated answers instead of queueing delay.
	level := admissionLevel(r)
	budget = degrade(&opts, level, budget)
	if budget > 0 {
		opts.Budget.Deadline = index.DeadlineIn(budget)
	}
	budgeted := budget > 0 || opts.Budget.MaxComparisons > 0

	start := obs.Now()
	res := x.ResolveWithOptions(p, opts)
	elapsed := obs.Now() - start
	if h.opts.SlowQuery > 0 && elapsed >= int64(h.opts.SlowQuery) {
		h.logSlowQuery(p, res, elapsed)
	}
	if level > 0 {
		h.degraded.Inc()
	}
	if res.Query.Truncated {
		h.truncated.Inc()
	}
	if budgeted {
		h.budgetSpent.Observe(int64(res.Comparisons))
	}
	resp := newQueryResponse(x, res)
	resp.Degraded = level
	if params.Debug {
		resp.Debug = newDebugJSON(res)
	}
	writeJSON(w, resp)
}

// readParams decodes the typed request knobs, answering the 400 itself
// on a malformed knob.
func (h *Handler) readParams(w http.ResponseWriter, r *http.Request) (QueryParams, bool) {
	params, err := ParseQueryParams(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return params, false
	}
	return params, true
}

func (h *Handler) upsert(w http.ResponseWriter, r *http.Request) {
	params, ok := h.readParams(w, r)
	if !ok {
		return
	}
	p, ok := h.readOneProfile(w, r, params)
	if !ok {
		return
	}
	id, created, err := h.Index().Upsert(*p)
	if err != nil {
		code, status := upsertErrorStatus(err)
		httpError(w, status, code, err)
		return
	}
	writeJSON(w, upsertResponse{ID: id, Created: created})
}

func (h *Handler) bulk(w http.ResponseWriter, r *http.Request) {
	params, ok := h.readParams(w, r)
	if !ok {
		return
	}
	ps, ok := h.readProfiles(w, r, params)
	if !ok {
		return
	}
	x := h.Index()
	for _, p := range ps {
		if _, _, err := x.Upsert(p); err != nil {
			code, status := upsertErrorStatus(err)
			httpError(w, status, code, err)
			return
		}
	}
	writeJSON(w, bulkResponse{Upserted: len(ps)})
}

// healthz is liveness: the process is up and the handler answers.
func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodError(w, http.MethodGet)
		return
	}
	writeJSON(w, map[string]any{"status": "ok"})
}

// readyz is readiness: the index holds data and the admission gate is
// not saturated. A load balancer drains a replica answering 503 here
// while /healthz keeps it alive — shedding hard is a reason to stop
// sending traffic, not to restart the process. A read-only replica
// that has never loaded a snapshot (and whose follower has not
// bootstrapped) answers "empty" 503: routing traffic to it would serve
// zero-candidate answers that look like successes.
func (h *Handler) readyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodError(w, http.MethodGet)
		return
	}
	if x := h.Index(); x.ReadOnly() && !x.Restored() && x.Size() == 0 && (h.follower == nil || !h.follower.Ready()) {
		h.notReady(w, map[string]any{"status": "empty", "read_only": true})
		return
	}
	if h.gate.saturated() {
		h.notReady(w, map[string]any{"status": "shedding", "in_flight": h.gate.inFlight()})
		return
	}
	writeJSON(w, map[string]any{"status": "ok"})
}

// notReady writes the /readyz 503 with the same Retry-After a shed
// response carries. The body stays status-shaped (not the error
// envelope): readiness probes report state, they do not fail requests.
func (h *Handler) notReady(w http.ResponseWriter, body map[string]any) {
	writeNotReady(w, h.retryAfter, body)
}

// writeNotReady is the shared /readyz 503 writer (Handler and Cluster).
func writeNotReady(w http.ResponseWriter, retryAfterSecs int64, body map[string]any) {
	w.Header().Set("Retry-After", strconv.FormatInt(retryAfterSecs, 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(body)
}

func (h *Handler) snapshotSave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodError(w, http.MethodPost)
		return
	}
	if h.opts.SnapshotPath == "" {
		httpError(w, http.StatusNotFound, ErrCodeNotFound, fmt.Errorf("no snapshot path configured (start sparker-serve with -snapshot)"))
		return
	}
	// A replica consumes the snapshot file, never produces it — a
	// stale replica must not clobber the primary's newer snapshot.
	// Enforced here too, not only in sparker-serve's flag wiring, so
	// embedders of the handler get the same invariant.
	x := h.Index()
	if x.ReadOnly() {
		httpError(w, http.StatusForbidden, ErrCodeReadOnly, fmt.Errorf("read-only replica does not write snapshots"))
		return
	}
	start := time.Now()
	st, err := x.Save(h.opts.SnapshotPath)
	if err != nil {
		httpError(w, http.StatusInternalServerError, ErrCodeInternal, err)
		return
	}
	writeJSON(w, map[string]any{
		"path":       st.Path,
		"bytes":      st.Bytes,
		"elapsed_ms": float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// statsResponse is the /stats body: the index snapshot (its fields
// inline, exactly the pre-observability shape) plus the per-route HTTP
// counters and admission/budget accounting the serving layer owns.
type statsResponse struct {
	index.Snapshot
	HTTP        []routeStatsJSON   `json:"http"`
	Admission   admissionStatsJSON `json:"admission"`
	Replication *ReplicationStats  `json:"replication,omitempty"`
}

func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodError(w, http.MethodGet)
		return
	}
	resp := statsResponse{Snapshot: h.Index().Snapshot(), HTTP: h.routeStats(), Admission: h.admissionStats()}
	if h.follower != nil {
		st := h.follower.Stats()
		resp.Replication = &st
	}
	writeJSON(w, resp)
}

// logSlowQuery emits one structured slow-query record with the
// per-stage breakdown — enough to see where the time went without
// re-running the query.
func (h *Handler) logSlowQuery(p *profile.Profile, res *index.Resolution, elapsedNanos int64) {
	attrs := make([]any, 0, 2*index.NumStages+14)
	attrs = append(attrs,
		slog.String("original_id", p.OriginalID),
		slog.Float64("elapsed_ms", float64(elapsedNanos)/1e6),
	)
	for s := 0; s < index.NumStages; s++ {
		attrs = append(attrs, slog.Float64(index.Stage(s).String()+"_ms", float64(res.Query.StageNanos[s])/1e6))
	}
	attrs = append(attrs,
		slog.Int("keys", res.Query.Keys),
		slog.Int("postings_scanned", res.Query.PostingsScanned),
		slog.Int("candidates", len(res.Query.Candidates)),
		slog.Int("comparisons", res.Comparisons),
		slog.Int("matches", len(res.Matches)),
		slog.Bool("lsh_probed", res.Query.LSHProbed),
	)
	h.logger.Warn("slow query", attrs...)
}

// upsertErrorStatus maps index write errors onto the envelope code and
// HTTP status: writes against a read-only replica are refused, not
// malformed.
func upsertErrorStatus(err error) (code string, status int) {
	if errors.Is(err, index.ErrReadOnly) {
		return ErrCodeReadOnly, http.StatusForbidden
	}
	return ErrCodeBadRequest, http.StatusBadRequest
}

// upsertResponse and bulkResponse are the typed write acknowledgements.
type upsertResponse struct {
	ID      profile.ID `json:"id"`
	Created bool       `json:"created"`
}

type bulkResponse struct {
	Upserted int `json:"upserted"`
}

// candidateJSON is one ranked blocking candidate on the wire.
type candidateJSON struct {
	ID            profile.ID `json:"id"`
	OriginalID    string     `json:"original_id"`
	Source        int        `json:"source"`
	Weight        float64    `json:"weight"`
	SharedKeys    int        `json:"shared_keys"`
	SharedBuckets int        `json:"shared_buckets,omitempty"`
}

// matchJSON is one scored match on the wire.
type matchJSON struct {
	ID         profile.ID `json:"id"`
	OriginalID string     `json:"original_id"`
	Source     int        `json:"source"`
	Score      float64    `json:"score"`
}

// stageNanosJSON is one row of the ?debug=1 breakdown.
type stageNanosJSON struct {
	Stage string `json:"stage"`
	Nanos int64  `json:"nanos"`
}

// debugJSON is the ?debug=1 payload: where this query's time went,
// stage by stage.
type debugJSON struct {
	Stages     []stageNanosJSON `json:"stages"`
	TotalNanos int64            `json:"total_nanos"`
}

func newDebugJSON(r *index.Resolution) *debugJSON {
	d := &debugJSON{Stages: make([]stageNanosJSON, 0, index.NumStages)}
	for s := 0; s < index.NumStages; s++ {
		n := r.Query.StageNanos[s]
		d.Stages = append(d.Stages, stageNanosJSON{Stage: index.Stage(s).String(), Nanos: n})
		d.TotalNanos += n
	}
	return d
}

// queryResponse carries a resolution plus its probe accounting.
type queryResponse struct {
	Candidates      []candidateJSON `json:"candidates"`
	Matches         []matchJSON     `json:"matches"`
	Keys            int             `json:"keys"`
	BlocksProbed    int             `json:"blocks_probed"`
	BlocksPurged    int             `json:"blocks_purged"`
	BlocksFiltered  int             `json:"blocks_filtered"`
	PostingsScanned int             `json:"postings_scanned"`
	Pruned          int             `json:"pruned"`
	Comparisons     int             `json:"comparisons"`
	// LSH probe accounting, present only when a probe ran.
	LSHProbed     bool `json:"lsh_probed,omitempty"`
	BucketsProbed int  `json:"buckets_probed,omitempty"`
	BucketsPurged int  `json:"buckets_purged,omitempty"`
	LSHCandidates int  `json:"lsh_candidates,omitempty"`
	// Truncated marks a budget-bound answer: the best-first prefix the
	// per-request budget allowed, with the stage that tripped it.
	Truncated      bool   `json:"truncated,omitempty"`
	TruncatedStage string `json:"truncated_stage,omitempty"`
	// Degraded is the admission ladder level this query was served at
	// (0 = healthy, omitted; 1..3 = tightened budget/probe policy).
	Degraded int `json:"degraded,omitempty"`
	// Debug is the per-stage timing breakdown, present only with
	// ?debug=1.
	Debug *debugJSON `json:"debug,omitempty"`
}

func newQueryResponse(x *index.Index, r *index.Resolution) queryResponse {
	resp := queryResponse{
		Candidates:      make([]candidateJSON, 0, len(r.Query.Candidates)),
		Matches:         make([]matchJSON, 0, len(r.Matches)),
		Keys:            r.Query.Keys,
		BlocksProbed:    r.Query.BlocksProbed,
		BlocksPurged:    r.Query.BlocksPurged,
		BlocksFiltered:  r.Query.BlocksFiltered,
		PostingsScanned: r.Query.PostingsScanned,
		Pruned:          r.Query.Pruned,
		Comparisons:     r.Comparisons,
		LSHProbed:       r.Query.LSHProbed,
		BucketsProbed:   r.Query.BucketsProbed,
		BucketsPurged:   r.Query.BucketsPurged,
		LSHCandidates:   r.Query.LSHCandidates,
		Truncated:       r.Query.Truncated,
		TruncatedStage:  r.Query.TruncatedStage,
	}
	for _, c := range r.Query.Candidates {
		cj := candidateJSON{ID: c.ID, Weight: c.Weight, SharedKeys: c.SharedKeys, SharedBuckets: c.SharedBuckets}
		if orig, src, ok := x.Meta(c.ID); ok {
			cj.OriginalID = orig
			cj.Source = src
		}
		resp.Candidates = append(resp.Candidates, cj)
	}
	for _, m := range r.Matches {
		mj := matchJSON{ID: m.B, Score: m.Score}
		if orig, src, ok := x.Meta(m.B); ok {
			mj.OriginalID = orig
			mj.Source = src
		}
		resp.Matches = append(resp.Matches, mj)
	}
	return resp
}

// readOneProfile parses exactly one JSON profile from a POST body.
func (h *Handler) readOneProfile(w http.ResponseWriter, r *http.Request, params QueryParams) (*profile.Profile, bool) {
	ps, ok := h.readProfiles(w, r, params)
	if !ok {
		return nil, false
	}
	if len(ps) != 1 {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, fmt.Errorf("expected one profile, got %d", len(ps)))
		return nil, false
	}
	return &ps[0], true
}

// readProfiles parses a JSON-lines POST body, applying the decoded
// ?source knob. The body is bounded by Options.MaxBodyBytes — one huge
// upload answers 413, it does not balloon the heap.
func (h *Handler) readProfiles(w http.ResponseWriter, r *http.Request, params QueryParams) ([]profile.Profile, bool) {
	x := h.Index()
	if r.Method != http.MethodPost {
		methodError(w, http.MethodPost)
		return nil, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, h.maxBody)
	ps, err := loader.ReadProfilesJSONL(r.Body, "id")
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, ErrCodePayloadTooLarge,
				fmt.Errorf("request body exceeds %d bytes (split the upload or raise -max-body)", tooBig.Limit))
			return nil, false
		}
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return nil, false
	}
	if params.SourceSet && params.Source == 1 && !x.Clean() {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, fmt.Errorf("source=1 needs a clean-clean index"))
		return nil, false
	}
	for i := range ps {
		ps[i].SourceID = params.Source
	}
	return ps, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
