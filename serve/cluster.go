package serve

// The distributed serving tier: a shard coordinator that fronts N
// independent sparker-serve processes behind the same /v1 API a single
// node speaks. Entity resolution over an inverted blocking index is
// embarrassingly parallel in the profile population — each shard owns a
// disjoint slice of the profiles (upserts route by hash of the original
// ID), answers queries against its slice alone, and the coordinator
// merges the ranked partials into one answer (index.MergePartials).
//
// Failure policy: resolution is a ranking, not a transaction. A dead
// shard degrades the answer (the surviving shards' merged results,
// marked degraded) rather than failing it — a 5xx is reserved for the
// case where no shard answered at all. Writes are the opposite: an
// upsert that cannot reach its designated shard must fail loudly, or
// the profile silently vanishes from every future answer.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sparker/internal/index"
	"sparker/internal/obs"
)

// shardBudgetFraction is the share of the request's wall-clock budget
// forwarded to each shard. Shards resolve in parallel, so each may
// spend almost the whole budget; the held-back remainder covers the
// coordinator's own fan-out and merge overhead.
const shardBudgetFraction = 0.9

// ClusterOptions configures the coordinator.
type ClusterOptions struct {
	// Client issues the fan-out and health-probe requests. Nil uses a
	// dedicated client with no overall timeout (per-request budgets
	// bound the fan-out; probes carry their own short timeout).
	Client *http.Client
	// Logger receives shard-failure warnings. Nil uses slog.Default().
	Logger *slog.Logger

	// MaxInFlight and ShedWait configure the coordinator's own admission
	// gate, exactly as on a single node (see Options). The gate guards
	// the coordinator's fan-out concurrency; each shard additionally
	// runs its own gate.
	MaxInFlight int
	ShedWait    time.Duration
	// DefaultBudget is the wall-clock budget applied to queries that do
	// not carry ?budget_ms= themselves, before the per-shard split.
	DefaultBudget time.Duration
	// MaxBodyBytes caps request bodies (413 beyond it). Zero uses
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64

	// ProbeInterval paces the background /readyz health probe of every
	// shard. Zero defaults to 500ms.
	ProbeInterval time.Duration
	// ShardRetries is how many times a failed shard call is retried
	// (transport errors and 5xx/429; a 4xx is the shard's final word).
	// Zero defaults to 1; negative disables retries.
	ShardRetries int
	// RetryBase is the first retry backoff; consecutive retries double
	// it with jitter, exactly like the follower loop. Zero defaults to
	// 50ms.
	RetryBase time.Duration

	// NoMetrics disables GET /metrics (enabled by default).
	NoMetrics bool
}

// Cluster is the scatter-gather coordinator: an http.Handler exposing
// the /v1 API (plus the legacy aliases) over a fleet of shard
// processes. Construct with NewCluster; Close stops the health prober.
type Cluster struct {
	router
	shards     []*shardClient
	opts       ClusterOptions
	logger     *slog.Logger
	gate       *admission
	maxBody    int64
	retryAfter int64
	retries    int
	retryBase  time.Duration

	stop     chan struct{}
	stopOnce sync.Once
	probeWG  sync.WaitGroup

	// Cluster telemetry: the sparker_cluster_* metric families.
	fanouts         obs.Counter // scatter-gather queries served
	degradedFanouts obs.Counter // queries answered with >=1 shard missing
	degraded        obs.Counter // queries served at a non-zero ladder level
	truncated       obs.Counter // merged answers with a tripped budget
	mergeNanos      obs.Histogram
	stageNanos      [index.NumStages]obs.Histogram // aggregated shard stage timings
}

// shardClient is the coordinator's view of one shard process: its base
// URL, probed health, and per-shard accounting.
type shardClient struct {
	url     string
	client  *http.Client
	healthy atomic.Bool

	requests obs.Counter
	errors   obs.Counter
	lastErr  atomic.Value // string
}

// ShardFor routes an original profile ID onto one of n shards (FNV-1a).
// Exported so tests and tooling can predict a profile's home shard.
func ShardFor(originalID string, n int) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(originalID))
	return int(h.Sum64() % uint64(n))
}

// NewCluster builds a coordinator over the given shard base URLs (e.g.
// "http://shard0:8081"). Shard order matters: it defines the hash
// routing, so every coordinator of the same fleet must list the shards
// identically. The first health probe runs synchronously so /readyz is
// meaningful from the first request.
func NewCluster(shardURLs []string, opts ClusterOptions) (*Cluster, error) {
	if len(shardURLs) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Cluster{
		opts:       opts,
		logger:     opts.Logger,
		gate:       newAdmission(opts.MaxInFlight, opts.ShedWait),
		maxBody:    opts.MaxBodyBytes,
		retryAfter: retryAfterSeconds(opts.ShedWait),
		retries:    opts.ShardRetries,
		retryBase:  opts.RetryBase,
		stop:       make(chan struct{}),
	}
	if c.logger == nil {
		c.logger = slog.Default()
	}
	if c.maxBody <= 0 {
		c.maxBody = DefaultMaxBodyBytes
	}
	if c.retries == 0 {
		c.retries = 1
	} else if c.retries < 0 {
		c.retries = 0
	}
	if c.retryBase <= 0 {
		c.retryBase = 50 * time.Millisecond
	}
	for _, u := range shardURLs {
		if err := ValidateLeaderURL(u); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.shards = append(c.shards, &shardClient{url: trimSlash(u), client: client})
	}
	c.router.init()
	c.handle("/v1/query", c.gate.gated(c.retryAfter, c.query), "/query")
	c.handle("/v1/upsert", c.gate.gated(c.retryAfter, c.upsert), "/upsert")
	c.handle("/v1/bulk", c.gate.gated(c.retryAfter, c.bulk), "/bulk")
	c.handle("/v1/stats", c.stats, "/stats")
	c.handle("/healthz", c.healthz)
	c.handle("/readyz", c.readyz)
	if !opts.NoMetrics {
		c.handle("/metrics", c.metrics)
	}
	c.probeAll()
	c.probeWG.Add(1)
	go c.probeLoop()
	return c, nil
}

func trimSlash(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// Close stops the background health prober. The handler keeps
// answering (against the last probed health) until the server drops it.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.probeWG.Wait()
}

// probeLoop re-probes every shard's /readyz on a fixed cadence.
func (c *Cluster) probeLoop() {
	defer c.probeWG.Done()
	interval := c.opts.ProbeInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

// probeAll checks every shard's /readyz concurrently. A shard is
// healthy when it answers 200 within the probe timeout; the health bit
// feeds the coordinator's /readyz, /v1/stats and /metrics — the query
// fan-out itself always tries every shard, so a flapping probe can
// degrade reporting but never an answer.
func (c *Cluster) probeAll() {
	var wg sync.WaitGroup
	for _, s := range c.shards {
		wg.Add(1)
		go func(s *shardClient) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.url+"/readyz", nil)
			if err != nil {
				s.healthy.Store(false)
				return
			}
			resp, err := s.client.Do(req)
			if err != nil {
				s.healthy.Store(false)
				return
			}
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			s.healthy.Store(resp.StatusCode == http.StatusOK)
		}(s)
	}
	wg.Wait()
}

func (c *Cluster) healthyCount() int {
	n := 0
	for _, s := range c.shards {
		if s.healthy.Load() {
			n++
		}
	}
	return n
}

// do issues one shard call with bounded retries: transport errors and
// 5xx/429 retry with doubling jittered backoff (the follower loop's
// pacing); any other response is the shard's final word. The caller
// owns the returned response body.
func (s *shardClient) do(ctx context.Context, method, pathAndQuery string, body []byte, retries int, base time.Duration) (*http.Response, error) {
	s.requests.Inc()
	var backoff time.Duration
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, s.url+pathAndQuery, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := s.client.Do(req)
		if err == nil {
			if resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
				return resp, nil
			}
			if attempt >= retries {
				return resp, nil
			}
			// Retryable status: drain so the connection is reusable.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
			resp.Body.Close()
		} else if attempt >= retries {
			return nil, err
		}
		backoff = nextBackoff(backoff, base, time.Second)
		select {
		case <-time.After(jitteredBackoff(backoff)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// fail records a shard-call failure for /v1/stats and /metrics.
func (s *shardClient) fail(err error) {
	s.errors.Inc()
	s.lastErr.Store(err.Error())
}

// shardQueryResponse is a shard's /v1/query answer as the coordinator
// decodes it: the mergeable partial plus the shard-side degradation
// level and debug breakdown.
type shardQueryResponse struct {
	index.Partial
	Degraded int        `json:"degraded"`
	Debug    *debugJSON `json:"debug"`
}

// clusterInfoJSON is the cluster section of every coordinator query
// response: how many shards answered, which failed, and whether the
// answer is degraded (missing a shard's results).
type clusterInfoJSON struct {
	Shards    int      `json:"shards"`
	Responded int      `json:"responded"`
	Failed    []string `json:"failed,omitempty"`
	Degraded  bool     `json:"degraded,omitempty"`
}

// clusterQueryResponse is the merged answer. It carries the same
// fields as a single node's queryResponse except the shard-local
// profile IDs, which are meaningless across processes — candidates and
// matches identify profiles by (original_id, source) alone.
type clusterQueryResponse struct {
	index.Partial
	Degraded int             `json:"degraded,omitempty"`
	Debug    *debugJSON      `json:"debug,omitempty"`
	Cluster  clusterInfoJSON `json:"cluster"`
}

// degradeParams is the coordinator-side degradation ladder: the same
// schedule as degrade() applied to the forwardable knobs instead of
// resolve options, so pressure at the coordinator tightens what the
// shards are asked to do.
func degradeParams(p *QueryParams, level int) {
	if level <= 0 {
		return
	}
	budget := time.Duration(p.BudgetMS * float64(time.Millisecond))
	if !p.BudgetSet || budget == 0 || budget > degradedBudgetCap {
		budget = degradedBudgetCap
	}
	budget >>= uint(level - 1)
	if budget < degradedBudgetFloor {
		budget = degradedBudgetFloor
	}
	p.BudgetMS = float64(budget) / float64(time.Millisecond)
	p.BudgetSet = true
	if lim := degradedMaxComparisons[level]; !p.MaxComparisonsSet || p.MaxComparisons == 0 || p.MaxComparisons > lim {
		p.MaxComparisons = lim
		p.MaxComparisonsSet = true
	}
	switch {
	case level >= 3:
		p.Probe = "off"
	case level >= 2 && p.Probe == "union":
		p.Probe = "fallback"
	}
}

// readBody slurps a bounded request body (POST only).
func (c *Cluster) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		methodError(w, http.MethodPost)
		return nil, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, c.maxBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, ErrCodePayloadTooLarge,
				fmt.Errorf("request body exceeds %d bytes (split the upload or raise -max-body)", tooBig.Limit))
			return nil, false
		}
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return nil, false
	}
	return body, true
}

// query scatter-gathers one profile across every shard and merges the
// ranked partials. Shard failures degrade the answer; only a total
// failure is a 503.
func (c *Cluster) query(w http.ResponseWriter, r *http.Request) {
	params, err := ParseQueryParams(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	body, ok := c.readBody(w, r)
	if !ok {
		return
	}
	level := admissionLevel(r)
	degradeParams(&params, level)

	// The forwarded knobs: the client's (post-ladder), with the budget
	// split for the parallel fan-out and debug forced on so the
	// coordinator can aggregate per-shard stage timings. The client's
	// own debug choice governs the response, not the wire.
	fwd := params
	if !fwd.BudgetSet && c.opts.DefaultBudget > 0 {
		fwd.BudgetMS = float64(c.opts.DefaultBudget) / float64(time.Millisecond)
		fwd.BudgetSet = true
	}
	if fwd.BudgetSet && fwd.BudgetMS > 0 {
		fwd.BudgetMS *= shardBudgetFraction
	}
	fwd.Debug = true
	pathAndQuery := "/v1/query?" + fwd.Encode()

	parts := make([]*index.Partial, len(c.shards))
	debugs := make([]*debugJSON, len(c.shards))
	shardLevels := make([]int, len(c.shards))
	var mu sync.Mutex
	var failed []string
	var wg sync.WaitGroup
	for i, s := range c.shards {
		wg.Add(1)
		go func(i int, s *shardClient) {
			defer wg.Done()
			resp, err := s.do(r.Context(), http.MethodPost, pathAndQuery, body, c.retries, c.retryBase)
			if err == nil && resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("shard %s: %s", s.url, httpStatusError(resp))
				resp.Body.Close()
				resp = nil
			}
			if err == nil {
				var sq shardQueryResponse
				err = json.NewDecoder(resp.Body).Decode(&sq)
				resp.Body.Close()
				if err == nil {
					parts[i] = &sq.Partial
					debugs[i] = sq.Debug
					shardLevels[i] = sq.Degraded
					return
				}
				err = fmt.Errorf("shard %s: decode: %w", s.url, err)
			}
			s.fail(err)
			c.logger.Warn("shard query failed", slog.String("shard", s.url), slog.String("error", err.Error()))
			mu.Lock()
			failed = append(failed, s.url)
			mu.Unlock()
		}(i, s)
	}
	wg.Wait()
	c.fanouts.Inc()

	responded := len(c.shards) - len(failed)
	if responded == 0 {
		httpError(w, http.StatusServiceUnavailable, ErrCodeUnavailable,
			fmt.Errorf("no shard answered (%d configured)", len(c.shards)))
		return
	}

	start := obs.Now()
	merged := index.MergePartials(parts)
	c.mergeNanos.Observe(obs.Now() - start)
	c.observeStages(debugs)

	if len(failed) > 0 {
		c.degradedFanouts.Inc()
	}
	if level > 0 {
		c.degraded.Inc()
	}
	if merged.Truncated {
		c.truncated.Inc()
	}
	resp := clusterQueryResponse{
		Partial: *merged,
		Cluster: clusterInfoJSON{
			Shards:    len(c.shards),
			Responded: responded,
			Failed:    failed,
			Degraded:  len(failed) > 0,
		},
	}
	// The reported degradation level is the worst the query saw on
	// either side of the fan-out.
	resp.Degraded = level
	for i, l := range shardLevels {
		if parts[i] != nil && l > resp.Degraded {
			resp.Degraded = l
		}
	}
	if params.Debug {
		resp.Debug = mergeDebug(debugs)
	}
	writeJSON(w, resp)
}

// observeStages feeds each responding shard's per-stage timings into
// the sparker_cluster_stage_seconds histograms.
func (c *Cluster) observeStages(debugs []*debugJSON) {
	for _, d := range debugs {
		if d == nil {
			continue
		}
		for _, row := range d.Stages {
			if s := stageIndex(row.Stage); s >= 0 {
				c.stageNanos[s].Observe(row.Nanos)
			}
		}
	}
}

// stageIndex maps a wire stage name back onto its pipeline position
// (-1 when unknown — a newer shard may report stages this coordinator
// does not know).
func stageIndex(name string) int {
	for s := 0; s < index.NumStages; s++ {
		if index.Stage(s).String() == name {
			return s
		}
	}
	return -1
}

// mergeDebug merges shard debug breakdowns by per-stage maximum: the
// shards run in parallel, so the slowest shard per stage approximates
// where the fan-out's wall clock went.
func mergeDebug(debugs []*debugJSON) *debugJSON {
	d := &debugJSON{Stages: make([]stageNanosJSON, 0, index.NumStages)}
	for s := 0; s < index.NumStages; s++ {
		name := index.Stage(s).String()
		var max int64
		for _, sd := range debugs {
			if sd == nil {
				continue
			}
			for _, row := range sd.Stages {
				if row.Stage == name && row.Nanos > max {
					max = row.Nanos
				}
			}
		}
		d.Stages = append(d.Stages, stageNanosJSON{Stage: name, Nanos: max})
		d.TotalNanos += max
	}
	return d
}

// decodeRecords splits a JSONL body into its raw records and their
// original IDs, using the same streaming decoder as the loader so a
// record the coordinator routes is exactly a record a shard will
// accept. Every record must carry an explicit "id": the single-node
// row-N auto-ID cannot survive sharding (the coordinator and the shard
// would number rows differently, splitting one profile's identity).
func decodeRecords(body []byte) (ids []string, raws []json.RawMessage, err error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	row := 0
	for dec.More() {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return nil, nil, fmt.Errorf("JSONL record %d: %w", row+1, err)
		}
		var rec struct {
			ID any `json:"id"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, nil, fmt.Errorf("JSONL record %d: %w", row+1, err)
		}
		if rec.ID == nil {
			return nil, nil, fmt.Errorf("JSONL record %d: missing \"id\" (cluster writes need explicit ids)", row+1)
		}
		ids = append(ids, fmt.Sprintf("%v", rec.ID))
		raws = append(raws, raw)
		row++
	}
	return ids, raws, nil
}

// clusterUpsertResponse acknowledges a routed write. The shard-local
// profile ID is deliberately absent — it identifies nothing outside
// its shard.
type clusterUpsertResponse struct {
	Created bool `json:"created"`
	Shard   int  `json:"shard"`
}

// relayShardError forwards a shard's error response verbatim: the
// shard already speaks the /v1 envelope, so its 4xx (read-only, bad
// profile, unclean source) passes through untranslated.
func relayShardError(w http.ResponseWriter, resp *http.Response) {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// upsert routes one profile to its hash-designated shard, forwarding
// the record bytes untouched.
func (c *Cluster) upsert(w http.ResponseWriter, r *http.Request) {
	params, err := ParseQueryParams(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	body, ok := c.readBody(w, r)
	if !ok {
		return
	}
	ids, raws, err := decodeRecords(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	if len(ids) != 1 {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, fmt.Errorf("expected one profile, got %d", len(ids)))
		return
	}
	shard := ShardFor(ids[0], len(c.shards))
	s := c.shards[shard]
	resp, err := s.do(r.Context(), http.MethodPost, "/v1/upsert?"+params.Encode(), raws[0], c.retries, c.retryBase)
	if err != nil {
		s.fail(err)
		httpError(w, http.StatusServiceUnavailable, ErrCodeUnavailable,
			fmt.Errorf("shard %s unreachable: %v", s.url, err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.fail(fmt.Errorf("upsert: %s", resp.Status))
		relayShardError(w, resp)
		return
	}
	var ack upsertResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		s.fail(err)
		httpError(w, http.StatusInternalServerError, ErrCodeInternal, fmt.Errorf("shard %s: decode: %w", s.url, err))
		return
	}
	writeJSON(w, clusterUpsertResponse{Created: ack.Created, Shard: shard})
}

// clusterBulkResponse acknowledges a scattered bulk load.
type clusterBulkResponse struct {
	Upserted int `json:"upserted"`
	// Shards counts how many shards received at least one record.
	Shards int `json:"shards"`
}

// bulk scatters a JSONL load across the shards: each record goes to
// its hash-designated shard, records grouped into one /v1/bulk call
// per shard. Any shard failure fails the load (reporting how much was
// applied) — partial silent success would lose profiles.
func (c *Cluster) bulk(w http.ResponseWriter, r *http.Request) {
	params, err := ParseQueryParams(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	body, ok := c.readBody(w, r)
	if !ok {
		return
	}
	ids, raws, err := decodeRecords(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	groups := make([][]byte, len(c.shards))
	for i, id := range ids {
		shard := ShardFor(id, len(c.shards))
		groups[shard] = append(groups[shard], raws[i]...)
		groups[shard] = append(groups[shard], '\n')
	}
	qs := "/v1/bulk?" + params.Encode()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		upserted int
		touched  int
		firstErr error
		relay    *http.Response
	)
	for i, group := range groups {
		if len(group) == 0 {
			continue
		}
		touched++
		wg.Add(1)
		go func(s *shardClient, group []byte) {
			defer wg.Done()
			resp, err := s.do(r.Context(), http.MethodPost, qs, group, c.retries, c.retryBase)
			if err != nil {
				s.fail(err)
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("shard %s unreachable: %v", s.url, err)
				}
				mu.Unlock()
				return
			}
			if resp.StatusCode != http.StatusOK {
				s.fail(fmt.Errorf("bulk: %s", resp.Status))
				mu.Lock()
				if relay == nil && firstErr == nil {
					relay = resp // consumed by the relay below
				} else {
					resp.Body.Close()
				}
				mu.Unlock()
				return
			}
			var ack bulkResponse
			err = json.NewDecoder(resp.Body).Decode(&ack)
			resp.Body.Close()
			mu.Lock()
			if err != nil {
				s.fail(err)
				if firstErr == nil {
					firstErr = fmt.Errorf("shard %s: decode: %w", s.url, err)
				}
			} else {
				upserted += ack.Upserted
			}
			mu.Unlock()
		}(c.shards[i], group)
	}
	wg.Wait()
	if firstErr != nil {
		if relay != nil {
			relay.Body.Close()
		}
		httpError(w, http.StatusServiceUnavailable, ErrCodeUnavailable,
			fmt.Errorf("bulk partially applied (%d upserted): %v", upserted, firstErr))
		return
	}
	if relay != nil {
		defer relay.Body.Close()
		relayShardError(w, relay)
		return
	}
	writeJSON(w, clusterBulkResponse{Upserted: upserted, Shards: touched})
}

// shardStatsJSON is one shard's row in the coordinator's /v1/stats.
type shardStatsJSON struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Requests  int64  `json:"requests"`
	Errors    int64  `json:"errors"`
	LastError string `json:"last_error,omitempty"`
}

// clusterStatsResponse is the coordinator's /v1/stats body.
type clusterStatsResponse struct {
	Shards          []shardStatsJSON   `json:"shards"`
	Healthy         int                `json:"healthy"`
	Fanouts         int64              `json:"fanouts"`
	DegradedFanouts int64              `json:"degraded_fanouts"`
	HTTP            []routeStatsJSON   `json:"http"`
	Admission       admissionStatsJSON `json:"admission"`
}

func (c *Cluster) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodError(w, http.MethodGet)
		return
	}
	resp := clusterStatsResponse{
		Healthy:         c.healthyCount(),
		Fanouts:         c.fanouts.Load(),
		DegradedFanouts: c.degradedFanouts.Load(),
		HTTP:            c.routeStats(),
	}
	for _, s := range c.shards {
		row := shardStatsJSON{
			URL:      s.url,
			Healthy:  s.healthy.Load(),
			Requests: s.requests.Load(),
			Errors:   s.errors.Load(),
		}
		if e, ok := s.lastErr.Load().(string); ok {
			row.LastError = e
		}
		resp.Shards = append(resp.Shards, row)
	}
	resp.Admission = admissionStatsJSON{
		MaxInFlight: c.gate.capacity(),
		InFlight:    c.gate.inFlight(),
		Degraded:    c.degraded.Load(),
		Truncated:   c.truncated.Load(),
	}
	if c.gate != nil {
		resp.Admission.Waiting = int(c.gate.waiting.Load())
		resp.Admission.ShedFull = c.gate.shedFull.Load()
		resp.Admission.ShedTimeout = c.gate.shedTimeout.Load()
	}
	writeJSON(w, resp)
}

func (c *Cluster) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodError(w, http.MethodGet)
		return
	}
	writeJSON(w, map[string]any{"status": "ok"})
}

// readyz: the coordinator is ready while at least one shard is (a
// degraded cluster still answers) and its own gate is not saturated.
// With every shard down there is nothing to serve — drain.
func (c *Cluster) readyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodError(w, http.MethodGet)
		return
	}
	healthy := c.healthyCount()
	if healthy == 0 {
		writeNotReady(w, c.retryAfter, map[string]any{"status": "no_shards", "shards": len(c.shards)})
		return
	}
	if c.gate.saturated() {
		writeNotReady(w, c.retryAfter, map[string]any{"status": "shedding", "in_flight": c.gate.inFlight()})
		return
	}
	writeJSON(w, map[string]any{
		"status":   "ok",
		"shards":   len(c.shards),
		"healthy":  healthy,
		"degraded": healthy < len(c.shards),
	})
}

// metrics serves the coordinator's Prometheus exposition: the
// sparker_cluster_* families plus the shared admission and HTTP
// families.
func (c *Cluster) metrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodError(w, http.MethodGet)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e := obs.NewExpo(w)

	e.Gauge("sparker_cluster_shards", "Configured shard processes.", float64(len(c.shards)))
	e.Gauge("sparker_cluster_shards_healthy", "Shards whose last /readyz probe answered 200.", float64(c.healthyCount()))
	e.Counter("sparker_cluster_fanouts_total", "Scatter-gather queries served.", float64(c.fanouts.Load()))
	e.Counter("sparker_cluster_degraded_fanouts_total", "Queries answered with at least one shard missing.", float64(c.degradedFanouts.Load()))
	for _, s := range c.shards {
		e.Gauge("sparker_cluster_shard_healthy", "1 while the shard's /readyz probe answers 200.", boolGauge(s.healthy.Load()),
			obs.Label{Name: "shard", Value: s.url})
	}
	for _, s := range c.shards {
		e.Counter("sparker_cluster_shard_requests_total", "Requests issued to the shard.", float64(s.requests.Load()),
			obs.Label{Name: "shard", Value: s.url})
	}
	for _, s := range c.shards {
		e.Counter("sparker_cluster_shard_errors_total", "Failed shard calls (transport, status or decode).", float64(s.errors.Load()),
			obs.Label{Name: "shard", Value: s.url})
	}
	for s := 0; s < index.NumStages; s++ {
		e.Histogram("sparker_cluster_stage_seconds", "Per-stage query latency reported by shards.",
			c.stageNanos[s].Snapshot(), 1e-9, obs.Label{Name: "stage", Value: index.Stage(s).String()})
	}
	e.Histogram("sparker_cluster_merge_seconds", "Partial-result merge latency at the coordinator.", c.mergeNanos.Snapshot(), 1e-9)

	adm := c.gate
	e.Gauge("sparker_admission_max_in_flight", "Configured admission gate capacity (0 = admission off).", float64(adm.capacity()))
	e.Gauge("sparker_admission_in_flight", "Requests currently admitted through the gate.", float64(adm.inFlight()))
	if adm != nil {
		e.Gauge("sparker_admission_waiting", "Requests waiting for an admission slot.", float64(adm.waiting.Load()))
		e.Counter("sparker_admission_shed_total", "Requests shed by the admission gate.", float64(adm.shedFull.Load()),
			obs.Label{Name: "reason", Value: "full"})
		e.Counter("sparker_admission_shed_total", "Requests shed by the admission gate.", float64(adm.shedTimeout.Load()),
			obs.Label{Name: "reason", Value: "timeout"})
	}
	e.Counter("sparker_queries_degraded_total", "Queries served at a non-zero degradation level.", float64(c.degraded.Load()))
	e.Counter("sparker_queries_truncated_total", "Merged answers truncated by a per-request budget.", float64(c.truncated.Load()))

	c.writeHTTPMetrics(e)
	_ = e.Flush()
}
