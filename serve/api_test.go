package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"
	"time"

	"sparker/internal/index"
)

// TestErrorEnvelope pins the /v1 error contract: every 4xx/5xx path —
// method, knob, payload, read-only, not-found, and both admission shed
// shapes — answers the one typed envelope with a machine-matchable
// code. A client that switches on error.code must never meet an
// ad-hoc body.
func TestErrorEnvelope(t *testing.T) {
	writable := index.New(false, index.DefaultConfig())
	plain := NewHandlerOptions(writable, Options{MaxBodyBytes: 64})

	ro := index.New(false, index.DefaultConfig())
	ro.SetReadOnly(true)
	readOnly := NewHandler(ro)

	// Gates pre-filled from inside the package: the next gated request
	// finds no slot and sheds — 429 immediately without a shed wait,
	// 503 after one.
	shed429 := NewHandlerOptions(writable, Options{MaxInFlight: 1})
	shed429.gate.sem <- struct{}{}
	shed503 := NewHandlerOptions(writable, Options{MaxInFlight: 1, ShedWait: time.Millisecond})
	shed503.gate.sem <- struct{}{}

	profileBody := `{"id": "p1", "name": "acme blender"}`
	for _, tc := range []struct {
		name       string
		h          http.Handler
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
		wantRetry  bool
	}{
		{"method not allowed", plain, http.MethodGet, "/v1/query", "", http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed, false},
		{"bad budget knob", plain, http.MethodPost, "/v1/query?budget_ms=nope", profileBody, http.StatusBadRequest, ErrCodeBadRequest, false},
		{"bad probe knob", plain, http.MethodPost, "/v1/query?probe=bogus", profileBody, http.StatusBadRequest, ErrCodeBadRequest, false},
		{"bad probe knob via alias", plain, http.MethodPost, "/query?probe=bogus", profileBody, http.StatusBadRequest, ErrCodeBadRequest, false},
		{"malformed body", plain, http.MethodPost, "/v1/query", "not json", http.StatusBadRequest, ErrCodeBadRequest, false},
		{"probe without lsh", plain, http.MethodPost, "/v1/query?probe=union", profileBody, http.StatusBadRequest, ErrCodeBadRequest, false},
		{"snapshot save unconfigured", plain, http.MethodPost, "/v1/snapshot/save", "", http.StatusNotFound, ErrCodeNotFound, false},
		{"deltas without op log", plain, http.MethodGet, "/v1/deltas?since=0", "", http.StatusNotFound, ErrCodeNotFound, false},
		{"bad deltas knob", plain, http.MethodGet, "/v1/deltas?since=-1", "", http.StatusNotFound, ErrCodeNotFound, false},
		{"payload too large", plain, http.MethodPost, "/v1/upsert",
			`{"id": "big", "name": "` + strings.Repeat("x", 200) + `"}`, http.StatusRequestEntityTooLarge, ErrCodePayloadTooLarge, false},
		{"read-only upsert", readOnly, http.MethodPost, "/v1/upsert", profileBody, http.StatusForbidden, ErrCodeReadOnly, false},
		{"read-only upsert via alias", readOnly, http.MethodPost, "/upsert", profileBody, http.StatusForbidden, ErrCodeReadOnly, false},
		{"shed immediately", shed429, http.MethodPost, "/v1/query", profileBody, http.StatusTooManyRequests, ErrCodeOverloaded, true},
		{"shed after wait", shed503, http.MethodPost, "/v1/query", profileBody, http.StatusServiceUnavailable, ErrCodeOverloaded, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var rd *strings.Reader
			if tc.body != "" {
				rd = strings.NewReader(tc.body)
			} else {
				rd = strings.NewReader("")
			}
			req := httptest.NewRequest(tc.method, tc.path, rd)
			w := httptest.NewRecorder()
			tc.h.ServeHTTP(w, req)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", w.Code, tc.wantStatus, w.Body.String())
			}
			if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
				t.Errorf("content type = %q, want JSON", ct)
			}
			var env APIError
			if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
				t.Fatalf("body is not the error envelope: %v (%s)", err, w.Body.String())
			}
			if env.Err.Code != tc.wantCode {
				t.Errorf("error.code = %q, want %q", env.Err.Code, tc.wantCode)
			}
			if env.Err.Message == "" {
				t.Error("error.message empty")
			}
			if tc.wantRetry {
				if env.Err.RetryAfterSeconds < 1 {
					t.Errorf("retry_after_seconds = %d, want >= 1", env.Err.RetryAfterSeconds)
				}
				if w.Header().Get("Retry-After") == "" {
					t.Error("Retry-After header missing on shed response")
				}
			}
		})
	}
}

// TestQueryParamsRoundTrip pins the codec the coordinator forwards
// knobs through: ParseQueryParams(p.Values()) == p for every knob
// combination, including the explicit-zero budget that means
// "unlimited" (distinct from an absent knob).
func TestQueryParamsRoundTrip(t *testing.T) {
	for _, p := range []QueryParams{
		{},
		{Probe: "union", ProbeFloor: 3},
		{Probe: "off"},
		{BudgetMS: 12.5, BudgetSet: true},
		{BudgetMS: 0, BudgetSet: true}, // explicit ?budget_ms=0: lift the default
		{MaxComparisons: 64, MaxComparisonsSet: true},
		{MaxComparisons: 0, MaxComparisonsSet: true},
		{Debug: true},
		{Source: 1, SourceSet: true},
		{Source: 0, SourceSet: true},
		{Probe: "fallback", ProbeFloor: 2, BudgetMS: 7, BudgetSet: true,
			MaxComparisons: 128, MaxComparisonsSet: true, Debug: true, Source: 1, SourceSet: true},
	} {
		got, err := ParseQueryParams(p.Values())
		if err != nil {
			t.Fatalf("ParseQueryParams(%q): %v", p.Encode(), err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Errorf("round trip %q: got %+v, want %+v", p.Encode(), got, p)
		}
		// The canonical encoding is deterministic: encoding what we
		// decoded reproduces the same string.
		if got.Encode() != p.Encode() {
			t.Errorf("Encode not canonical: %q vs %q", got.Encode(), p.Encode())
		}
	}
}

// TestQueryParamsRejects pins the 400 knob validation.
func TestQueryParamsRejects(t *testing.T) {
	for _, qs := range []string{
		"probe=bogus",
		"probe_floor=0",
		"probe_floor=x",
		"budget_ms=-1",
		"budget_ms=abc",
		"max_comparisons=-5",
		"source=2",
		"source=x",
	} {
		v, _ := url.ParseQuery(qs)
		if _, err := ParseQueryParams(v); err == nil {
			t.Errorf("ParseQueryParams(%q) accepted, want error", qs)
		}
	}
}

// TestDeltaParamsRoundTrip pins the replication knob codec shared by
// the leader handler and the follower's poll-URL builder.
func TestDeltaParamsRoundTrip(t *testing.T) {
	for _, p := range []DeltaParams{
		{},
		{Since: 42},
		{Since: 7, WaitMS: 2500},
	} {
		got, err := ParseDeltaParams(p.Values())
		if err != nil {
			t.Fatalf("ParseDeltaParams(%v): %v", p, err)
		}
		if got != p {
			t.Errorf("round trip: got %+v, want %+v", got, p)
		}
	}
	if _, err := ParseDeltaParams(url.Values{"since": {"-1"}}); err == nil {
		t.Error("negative since accepted")
	}
	if _, err := ParseDeltaParams(url.Values{"wait_ms": {"x"}}); err == nil {
		t.Error("malformed wait_ms accepted")
	}
}
