package serve

// Tests of the replication surface: the /deltas and /snapshot leader
// endpoints, the Follower loop end to end (bootstrap, tail, leader
// death, retention-gap resync), the replica /readyz gate and the
// Retry-After derivation.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sparker/internal/index"
	"sparker/internal/profile"
)

// oplogConfig is the serving config every replication test uses: op
// log on, everything else default.
func oplogConfig() index.Config {
	cfg := index.DefaultConfig()
	cfg.OpLog.Enabled = true
	return cfg
}

// oplogIndex builds a dirty op-log-enabled index with n overlapping
// profiles, so queries always yield candidates.
func oplogIndex(t *testing.T, cfg index.Config, n int) *index.Index {
	t.Helper()
	x := index.New(false, cfg)
	for i := 0; i < n; i++ {
		p := profile.Profile{OriginalID: fmt.Sprintf("p%d", i)}
		p.Add("name", fmt.Sprintf("tok%d tok%d shared%d", i%12, (i/2)%12, i%4))
		p.Add("desc", fmt.Sprintf("word%d common", i%8))
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatalf("upsert: %v", err)
		}
	}
	return x
}

// quietLogger drops replication warnings: the leader-death tests
// produce them by design.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func getBody(t *testing.T, client *http.Client, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, resp.Header, body
}

func TestDeltasEndpointSemantics(t *testing.T) {
	x := oplogIndex(t, oplogConfig(), 10)
	srv := httptest.NewServer(NewHandlerOptions(x, Options{}))
	defer srv.Close()
	client := srv.Client()

	// Frames from zero: everything, with the head seq in the header.
	code, hdr, body := getBody(t, client, srv.URL+"/deltas?since=0")
	if code != http.StatusOK {
		t.Fatalf("since=0 status = %d, want 200", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type = %q", ct)
	}
	if hdr.Get(deltaSeqHeader) != "10" {
		t.Fatalf("%s = %q, want 10", deltaSeqHeader, hdr.Get(deltaSeqHeader))
	}
	if len(body) == 0 {
		t.Fatal("empty frame body")
	}

	// The frames must replay into an identical index.
	y := index.New(false, oplogConfig())
	if applied, _, err := y.ApplyOps(bytes.NewReader(body)); err != nil || applied != 10 {
		t.Fatalf("replay: applied %d, err %v", applied, err)
	}
	if y.Size() != x.Size() {
		t.Fatalf("replayed size %d, want %d", y.Size(), x.Size())
	}

	// Caught up with no wait: 204 and the head seq.
	code, hdr, _ = getBody(t, client, srv.URL+"/deltas?since=10")
	if code != http.StatusNoContent || hdr.Get(deltaSeqHeader) != "10" {
		t.Fatalf("caught-up poll: status %d, seq %q", code, hdr.Get(deltaSeqHeader))
	}

	// Ahead of the log: 410, the resync signal.
	if code, _, _ = getBody(t, client, srv.URL+"/deltas?since=99"); code != http.StatusGone {
		t.Fatalf("ahead-of-log status = %d, want 410", code)
	}

	// Malformed params: 400.
	for _, q := range []string{"?since=-1", "?since=abc", "?since=0&wait_ms=-5", "?since=0&wait_ms=x"} {
		if code, _, _ = getBody(t, client, srv.URL+"/deltas"+q); code != http.StatusBadRequest {
			t.Fatalf("deltas%s status = %d, want 400", q, code)
		}
	}

	// Wrong method: 405.
	resp, err := client.Post(srv.URL+"/deltas?since=0", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /deltas status = %d, want 405", resp.StatusCode)
	}

	// No op log at all: 404.
	plain := index.New(false, index.DefaultConfig())
	psrv := httptest.NewServer(NewHandlerOptions(plain, Options{}))
	defer psrv.Close()
	if code, _, _ = getBody(t, psrv.Client(), psrv.URL+"/deltas?since=0"); code != http.StatusNotFound {
		t.Fatalf("no-oplog status = %d, want 404", code)
	}
}

// TestDeltasLongPollWakes pins the long-poll contract: a caught-up
// poll parks, and an upsert wakes it with the new frames well before
// the wait expires.
func TestDeltasLongPollWakes(t *testing.T) {
	x := oplogIndex(t, oplogConfig(), 4)
	srv := httptest.NewServer(NewHandlerOptions(x, Options{}))
	defer srv.Close()

	type result struct {
		code  int
		body  []byte
		after time.Duration
	}
	done := make(chan result, 1)
	start := time.Now()
	go func() {
		code, _, body := getBody(t, srv.Client(), srv.URL+"/deltas?since=4&wait_ms=20000")
		done <- result{code, body, time.Since(start)}
	}()

	// Give the poll time to park, then write through the index.
	time.Sleep(50 * time.Millisecond)
	p := profile.Profile{OriginalID: "wake"}
	p.Add("name", "wakeup token")
	if _, _, err := x.Upsert(p); err != nil {
		t.Fatal(err)
	}

	select {
	case r := <-done:
		if r.code != http.StatusOK || len(r.body) == 0 {
			t.Fatalf("woken poll: status %d, %d bytes", r.code, len(r.body))
		}
		if r.after > 10*time.Second {
			t.Fatalf("poll returned after %v — the wait expired instead of the notify firing", r.after)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("long poll never returned")
	}
}

// queryAnswer fetches one /query response body — the byte-identical
// comparison unit for leader/follower agreement.
func queryAnswer(t *testing.T, client *http.Client, base string) []byte {
	t.Helper()
	resp, err := client.Post(base+"/query", "application/json", strings.NewReader(queryBody))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// waitForSeq polls the follower's /stats until its applied sequence
// number reaches want (the CI smoke does the same over two processes).
func waitForSeq(t *testing.T, client *http.Client, base string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := getStats(t, client, base)
		if st.Replication == nil {
			t.Fatal("/stats carries no replication section")
		}
		if st.Replication.AppliedSeq >= want {
			if st.Replication.LagSeconds != 0 && st.Replication.AppliedSeq >= st.Replication.LeaderSeq {
				t.Fatalf("caught up at seq %d but lag = %v", st.Replication.AppliedSeq, st.Replication.LagSeconds)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower never reached seq %d", want)
}

func TestReplicationEndToEnd(t *testing.T) {
	leaderIdx := oplogIndex(t, oplogConfig(), 24)
	leader := httptest.NewServer(NewHandlerOptions(leaderIdx, Options{}))
	defer leader.Close()

	f := NewFollower(leader.URL, oplogConfig(), FollowerOptions{
		PollWait: 200 * time.Millisecond,
		Interval: 10 * time.Millisecond,
		Logger:   quietLogger(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fx, err := f.Bootstrap(ctx)
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if !f.Ready() {
		t.Fatal("follower not ready after bootstrap")
	}
	if fx.Seq() != leaderIdx.Seq() {
		t.Fatalf("bootstrap seq %d, leader %d", fx.Seq(), leaderIdx.Seq())
	}
	fh := NewHandlerOptions(fx, Options{Follower: f})
	fsrv := httptest.NewServer(fh)
	defer fsrv.Close()
	go func() { _ = f.Run(ctx, fh) }()

	// A bootstrapped follower is in rotation and read-only.
	if code, _, _ := getBody(t, fsrv.Client(), fsrv.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("follower /readyz = %d, want 200", code)
	}
	resp, err := fsrv.Client().Post(fsrv.URL+"/upsert", "application/json",
		strings.NewReader(`{"id":"w","name":"write"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower upsert status = %d, want 403", resp.StatusCode)
	}

	// Write through the leader; the delta feed must carry it over.
	up, err := leader.Client().Post(leader.URL+"/upsert", "application/json",
		strings.NewReader(`{"id":"p3","name":"tok3 tok1 shared3 renamed","desc":"word3 common"}`))
	if err != nil {
		t.Fatal(err)
	}
	up.Body.Close()
	if up.StatusCode != http.StatusOK {
		t.Fatalf("leader upsert status = %d", up.StatusCode)
	}
	waitForSeq(t, fsrv.Client(), fsrv.URL, leaderIdx.Seq())

	want := queryAnswer(t, leader.Client(), leader.URL)
	got := queryAnswer(t, fsrv.Client(), fsrv.URL)
	if !bytes.Equal(want, got) {
		t.Fatalf("follower answer diverged from leader:\nleader:   %s\nfollower: %s", want, got)
	}

	// Kill the leader mid-stream: the follower keeps serving the same
	// answers at its last applied sequence number.
	leader.Close()
	time.Sleep(50 * time.Millisecond) // a poll or two fails and is recorded
	after := queryAnswer(t, fsrv.Client(), fsrv.URL)
	if !bytes.Equal(want, after) {
		t.Fatalf("answer changed after leader death:\nbefore: %s\nafter:  %s", want, after)
	}
	if code, _, _ := getBody(t, fsrv.Client(), fsrv.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("follower /readyz after leader death = %d, want 200", code)
	}
}

// TestFollowerResyncsAfterGap pins the 410 path: a follower whose
// position fell off the leader's retention window re-bootstraps and
// swaps the fresh index into its handler.
func TestFollowerResyncsAfterGap(t *testing.T) {
	cfg := oplogConfig()
	cfg.OpLog.MaxOps = 4 // tiny window: easy to fall off
	leaderIdx := oplogIndex(t, cfg, 8)
	leader := httptest.NewServer(NewHandlerOptions(leaderIdx, Options{}))
	defer leader.Close()

	f := NewFollower(leader.URL, oplogConfig(), FollowerOptions{
		PollWait: 50 * time.Millisecond,
		Interval: 10 * time.Millisecond,
		Logger:   quietLogger(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fx, err := f.Bootstrap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fh := NewHandlerOptions(fx, Options{Follower: f})

	// While the follower sleeps, the leader writes far past the window.
	for i := 0; i < 8; i++ {
		p := profile.Profile{OriginalID: fmt.Sprintf("n%d", i)}
		p.Add("name", fmt.Sprintf("fresh%d tok%d", i, i%12))
		if _, _, err := leaderIdx.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}

	go func() { _ = f.Run(ctx, fh) }()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if fh.Index().Seq() == leaderIdx.Seq() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := fh.Index().Seq(); got != leaderIdx.Seq() {
		t.Fatalf("follower seq %d, leader %d — resync never caught up", got, leaderIdx.Seq())
	}
	st := f.Stats()
	if st.Resyncs < 1 {
		t.Fatalf("resyncs = %d, want >= 1", st.Resyncs)
	}
	if fh.Index() == fx {
		t.Fatal("resync did not swap the handler's index")
	}
	if !fh.Index().ReadOnly() {
		t.Fatal("resynced index lost read-only mode")
	}
}

// TestSnapshotStreamBootstrap pins the /snapshot endpoint directly:
// the stream decodes into an index identical in size and sequence, and
// non-GET is refused.
func TestSnapshotStreamBootstrap(t *testing.T) {
	x := oplogIndex(t, oplogConfig(), 12)
	srv := httptest.NewServer(NewHandlerOptions(x, Options{}))
	defer srv.Close()

	code, hdr, body := getBody(t, srv.Client(), srv.URL+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("GET /snapshot status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type = %q", ct)
	}
	y, err := index.Decode(bytes.NewReader(body), oplogConfig())
	if err != nil {
		t.Fatalf("decode stream: %v", err)
	}
	if y.Size() != x.Size() || y.Seq() != x.Seq() {
		t.Fatalf("decoded %d profiles seq %d, want %d/%d", y.Size(), y.Seq(), x.Size(), x.Seq())
	}

	resp, err := srv.Client().Post(srv.URL+"/snapshot", "application/octet-stream", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /snapshot status = %d, want 405", resp.StatusCode)
	}
}

// TestReadyzEmptyReplica pins the replica readiness fix: a read-only
// index that has never loaded a snapshot (and has no bootstrapped
// follower) is held out of rotation with 503 + Retry-After, while an
// empty writable index — a leader warming up on /bulk — stays ready.
func TestReadyzEmptyReplica(t *testing.T) {
	empty := index.New(false, index.DefaultConfig())
	empty.SetReadOnly(true)
	srv := httptest.NewServer(NewHandlerOptions(empty, Options{}))
	defer srv.Close()

	code, hdr, body := getBody(t, srv.Client(), srv.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("empty replica /readyz = %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("not-ready response missing Retry-After")
	}
	var st map[string]any
	if err := json.Unmarshal(body, &st); err != nil || st["status"] != "empty" {
		t.Fatalf("not-ready body = %s (err %v)", body, err)
	}

	writable := index.New(false, index.DefaultConfig())
	wsrv := httptest.NewServer(NewHandlerOptions(writable, Options{}))
	defer wsrv.Close()
	if code, _, _ := getBody(t, wsrv.Client(), wsrv.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("empty writable /readyz = %d, want 200", code)
	}
}

// TestRetryAfterDerivedFromShedWait pins the shed-header fix: the
// Retry-After on 429/503 (and on the not-ready /readyz) is the
// configured shed wait rounded up to whole seconds, not a hardcoded 1.
func TestRetryAfterDerivedFromShedWait(t *testing.T) {
	for _, tc := range []struct {
		wait time.Duration
		want int64
	}{
		{0, 1},
		{300 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{2500 * time.Millisecond, 3},
		{30 * time.Second, 30},
	} {
		if got := retryAfterSeconds(tc.wait); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.wait, got, tc.want)
		}
	}

	// Through the wire: saturate a gate configured with a 2.5s wait and
	// read the header off the 503 /readyz (which answers immediately —
	// no need to sit out the shed wait itself).
	entered := make(chan struct{})
	release := make(chan struct{})
	x := overloadIndex(t, blockFirstComparison(entered, release))
	srv := httptest.NewServer(NewHandlerOptions(x, Options{MaxInFlight: 1, ShedWait: 2500 * time.Millisecond}))
	defer srv.Close()
	client := srv.Client()

	firstDone := make(chan struct{})
	go func() {
		resp := postQuery(t, client, srv.URL+"/query")
		resp.Body.Close()
		close(firstDone)
	}()
	<-entered

	resp, err := client.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated /readyz = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want 3 (2.5s shed wait rounded up)", got)
	}
	close(release)
	<-firstDone
}
