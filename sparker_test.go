package sparker_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sparker"
)

func benchmarkDataset(t *testing.T) (*sparker.Collection, *sparker.GroundTruth) {
	t.Helper()
	cfg := sparker.AbtBuyConfig()
	cfg.CoreEntities = 120
	cfg.AOnly = 10
	cfg.BDup = 8
	ds := sparker.GenerateBenchmark(cfg)
	gt, err := sparker.NewGroundTruthFromOriginalIDs(ds.Collection, ds.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Collection, gt
}

func TestPublicAPIEndToEnd(t *testing.T) {
	collection, gt := benchmarkDataset(t)
	result, err := sparker.Resolve(collection, sparker.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Entities) == 0 {
		t.Fatal("no entities")
	}
	m := sparker.EvaluatePairs(result.Blocker.Candidates, gt, collection.MaxComparisons())
	if m.Recall < 0.85 {
		t.Fatalf("blocking recall %f", m.Recall)
	}
}

func TestPublicAPIDistributed(t *testing.T) {
	collection, _ := benchmarkDataset(t)
	cluster := sparker.NewCluster(4)
	defer cluster.Close()
	pipeline := sparker.NewPipeline(sparker.DefaultConfig(), cluster)
	result, err := pipeline.Resolve(collection)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Entities) == 0 {
		t.Fatal("no entities")
	}
	if cluster.Metrics().TasksLaunched == 0 {
		t.Fatal("distributed pipeline launched no tasks")
	}
}

func TestPublicAPIStepByStep(t *testing.T) {
	collection, gt := benchmarkDataset(t)

	part := sparker.PartitionAttributes(collection, sparker.LooseSchemaOptions{Threshold: 0.3})
	if part.NumClusters() < 2 {
		t.Fatalf("clusters: %d", part.NumClusters())
	}
	blocks := sparker.TokenBlocking(collection, sparker.BlockingOptions{Clustering: part})
	filtered := sparker.FilterBlocks(sparker.PurgeBlocks(blocks, 0.5), 0.8)
	idx := sparker.BuildBlockIndex(filtered)
	edges := sparker.RunMetaBlocking(idx, sparker.MetaBlockingOptions{
		Scheme: sparker.CBS, Pruning: sparker.BlastPruning, Entropy: part,
	})
	pairs := sparker.EdgesToPairs(edges)
	if len(pairs) == 0 {
		t.Fatal("no candidates")
	}
	matches := sparker.MatchPairs(collection, pairs, sparker.JaccardMeasure(sparker.TokenizerOptions{}), 0.3)
	entities := sparker.ConnectedComponents(matches)
	if len(entities) == 0 {
		t.Fatal("no entities")
	}
	_ = gt
}

func TestPublicAPILostPairDrillDown(t *testing.T) {
	collection, gt := benchmarkDataset(t)
	cfg := sparker.DefaultConfig()
	result, err := sparker.Resolve(collection, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lost := sparker.LostPairs(result.Blocker.Candidates, gt)
	opts := result.Blocker.BlockingOptions(cfg)
	for i, p := range lost {
		if i == 5 {
			break
		}
		// Every lost pair must be explainable: either no shared keys at
		// all or keys that purging/filtering/pruning removed.
		_ = sparker.SharedBlockingKeys(collection, opts, p.A, p.B)
	}
}

func TestCSVRoundTripThroughPipeline(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	aPath := writeFile("a.csv", "id,name,price\n1,acme turbo widget,9.99\n2,zenix gadget pro,19.99\n")
	bPath := writeFile("b.csv", "id,title,cost\n10,acme turbo widget deluxe,9.99\n11,unrelated thing,5.00\n")

	a, err := sparker.ReadProfilesCSVFile(aPath, "id")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sparker.ReadProfilesCSVFile(bPath, "id")
	if err != nil {
		t.Fatal(err)
	}
	collection := sparker.NewCleanClean(a, b)

	cfg := sparker.DefaultConfig()
	cfg.LooseSchema = false
	cfg.UseEntropy = false
	cfg.Pruning = sparker.WEP
	result, err := sparker.Resolve(collection, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range result.Matches {
		if collection.Get(m.A).OriginalID == "1" && collection.Get(m.B).OriginalID == "10" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected 1<->10 match, got %v", result.Matches)
	}
}

func TestDebugSampleAPI(t *testing.T) {
	collection, _ := benchmarkDataset(t)
	s := sparker.BuildDebugSample(collection, sparker.SampleOptions{K: 10, PerSeed: 6, Seed: 3})
	if s.Collection.Size() == 0 || s.Collection.Size() >= collection.Size() {
		t.Fatalf("sample size %d", s.Collection.Size())
	}
}

func TestSupervisedTuningAPI(t *testing.T) {
	collection, gt := benchmarkDataset(t)
	cfg := sparker.DefaultConfig()
	result, err := sparker.NewPipeline(cfg, nil).RunBlocker(collection)
	if err != nil {
		t.Fatal(err)
	}
	var labeled []sparker.LabeledPair
	for _, p := range result.Candidates {
		labeled = append(labeled, sparker.LabeledPair{Pair: p, IsMatch: gt.Contains(p)})
	}
	th, f1 := sparker.TuneThreshold(collection, labeled, sparker.JaccardMeasure(sparker.TokenizerOptions{}))
	if th <= 0 || th > 1 {
		t.Fatalf("threshold %f", th)
	}
	if f1 < 0.5 {
		t.Fatalf("tuned sample F1 %f", f1)
	}
}

func TestManualPartitionEditAPI(t *testing.T) {
	collection, gt := benchmarkDataset(t)
	part := sparker.PartitionAttributes(collection, sparker.LooseSchemaOptions{Threshold: 0.3})
	edited := part.Clone()
	nc := edited.NewCluster()
	if err := edited.MoveAttribute("0:description", nc); err != nil {
		t.Fatal(err)
	}
	if err := edited.MoveAttribute("1:short_descr", nc); err != nil {
		t.Fatal(err)
	}
	sparker.RecomputeEntropies(edited, sparker.ExtractAttributeProfiles(collection, sparker.TokenizerOptions{}))

	autoBlocks := sparker.PurgeBlocks(sparker.TokenBlocking(collection, sparker.BlockingOptions{Clustering: part}), 0.5)
	editBlocks := sparker.PurgeBlocks(sparker.TokenBlocking(collection, sparker.BlockingOptions{Clustering: edited}), 0.5)
	lostAuto := len(sparker.LostPairs(autoBlocks.DistinctPairs(), gt))
	lostEdit := len(sparker.LostPairs(editBlocks.DistinctPairs(), gt))
	if lostEdit <= lostAuto {
		t.Fatalf("split should lose pairs: auto=%d edit=%d", lostAuto, lostEdit)
	}
}

func TestGroundTruthFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gt.csv")
	if err := os.WriteFile(path, []byte("idA,idB\nx,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pairs, err := sparker.ReadGroundTruthCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0] != [2]string{"x", "y"} {
		t.Fatalf("pairs: %v", pairs)
	}
}

func TestConfigStringsExported(t *testing.T) {
	// The re-exported enum constants must render useful names in reports.
	if !strings.Contains(sparker.CBS.String(), "CBS") {
		t.Fatal("scheme name")
	}
	if sparker.BlastPruning.String() != "Blast" {
		t.Fatal("pruning name")
	}
}
